"""Parallel experiment execution with deterministic result caching.

Every figure in the paper is a sweep of *independent* stochastic
simulations: each point derives its random streams purely from
``(seed, stream name)`` (see :mod:`repro.sim.rng`), so points can run in
any order, in any process, and produce bit-identical results.  This
module exploits that:

* :class:`ExperimentTask` names one point — a test kind plus an
  :class:`ExperimentConfig` and the experiment keyword arguments — and
  derives a stable content hash from it.
* :class:`ResultCache` persists finished results on disk under that
  hash, so re-running a figure replays cached points instantly.
* :class:`ExperimentRunner` fans pending tasks across a spawn-safe
  ``multiprocessing`` worker pool, reports per-point timing through an
  optional progress callback, and routes per-point failures into a
  structured :class:`PointOutcome.error` channel instead of letting one
  diverging configuration kill the whole sweep.

``jobs=1`` (the default) executes inline in the calling process — no
pool, no pickling — and is the reference behavior: parallel execution is
required to be bit-identical to it.

Cache keys cover the policy configuration (class name and every field),
the workload, the system (geometry included), the seed, the test kind,
and the experiment keyword arguments (caps, tolerances, fill fractions),
plus a cache format version.  Change any of these and the key changes;
delete the cache directory to invalidate everything.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import pickle
import time
import traceback
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass
from multiprocessing import get_context
from pathlib import Path
from typing import Any, Callable, Sequence

from ..errors import ConfigurationError, ExperimentError
from .configs import ExperimentConfig
from .experiments import run_allocation_experiment, run_performance_experiment

#: Bump when result dataclasses or experiment semantics change shape;
#: old cache entries then miss instead of deserializing stale science.
CACHE_FORMAT_VERSION = 1

#: Test kinds and the §3 procedures they dispatch to.
_EXPERIMENT_KINDS: dict[str, Callable[..., Any]] = {
    "allocation": run_allocation_experiment,
    "performance": run_performance_experiment,
}


def default_cache_dir() -> Path:
    """The default on-disk cache location.

    ``$REPRO_CACHE_DIR`` wins; otherwise ``$XDG_CACHE_HOME/repro`` (or
    ``~/.cache/repro``).
    """
    override = os.environ.get("REPRO_CACHE_DIR")
    if override:
        return Path(override)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "repro"


# ---------------------------------------------------------------------------
# Tasks and cache keys
# ---------------------------------------------------------------------------


def _canonical(value: Any) -> Any:
    """A JSON-serializable, order-stable projection of a config value."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        fields = {
            f.name: _canonical(getattr(value, f.name))
            for f in dataclasses.fields(value)
        }
        return [type(value).__name__, fields]
    if isinstance(value, dict):
        return {str(k): _canonical(v) for k, v in sorted(value.items())}
    if isinstance(value, (list, tuple)):
        return [_canonical(v) for v in value]
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)


@dataclass(frozen=True)
class ExperimentTask:
    """One executable sweep point: a test kind, a config, and kwargs.

    ``kwargs`` is stored as a sorted tuple of pairs so tasks stay hashable
    and their cache keys are independent of keyword order.  ``None``
    values are dropped at construction — passing ``fill_fraction=None``
    means the same thing as omitting it, and must hash the same.
    """

    kind: str
    config: ExperimentConfig
    kwargs: tuple[tuple[str, Any], ...] = ()

    def __post_init__(self) -> None:
        if self.kind not in _EXPERIMENT_KINDS:
            raise ExperimentError(f"unknown experiment kind {self.kind!r}")

    @classmethod
    def allocation(cls, config: ExperimentConfig, **kwargs: Any) -> "ExperimentTask":
        """An allocation (fragmentation) test point."""
        return cls("allocation", config, _freeze_kwargs(kwargs))

    @classmethod
    def performance(cls, config: ExperimentConfig, **kwargs: Any) -> "ExperimentTask":
        """A performance (application + sequential) test point."""
        return cls("performance", config, _freeze_kwargs(kwargs))

    def execute(self) -> Any:
        """Run the experiment synchronously in this process."""
        return _EXPERIMENT_KINDS[self.kind](self.config, **dict(self.kwargs))

    @property
    def cache_key(self) -> str:
        """Stable content hash identifying this point's result."""
        payload = json.dumps(
            [
                "repro-experiment",
                CACHE_FORMAT_VERSION,
                self.kind,
                _canonical(self.config),
                _canonical(dict(self.kwargs)),
            ],
            sort_keys=True,
            separators=(",", ":"),
        )
        return hashlib.sha256(payload.encode()).hexdigest()

    def describe(self) -> str:
        """One-line label for progress reports."""
        return f"{self.kind}: {self.config.describe()}"


def _freeze_kwargs(kwargs: dict[str, Any]) -> tuple[tuple[str, Any], ...]:
    return tuple(sorted((k, v) for k, v in kwargs.items() if v is not None))


# ---------------------------------------------------------------------------
# On-disk result cache
# ---------------------------------------------------------------------------


class ResultCache:
    """Pickle-per-key result store with atomic writes.

    Corrupt or unreadable entries are treated as misses, never as errors:
    the cache is an accelerator, not a source of truth.
    """

    def __init__(self, directory: str | Path) -> None:
        self.directory = Path(directory)

    def path(self, key: str) -> Path:
        return self.directory / f"{key}.pkl"

    def load(self, key: str) -> Any | None:
        """The cached result for ``key``, or ``None`` on a miss."""
        try:
            with open(self.path(key), "rb") as handle:
                return pickle.load(handle)
        except Exception:
            # A corrupt or truncated entry is a miss, never an error.
            # pickle raises far more than PickleError on garbage bytes
            # (ValueError, KeyError, UnicodeDecodeError, ImportError...).
            return None

    def store(self, key: str, result: Any) -> None:
        """Persist ``result`` under ``key`` (atomic rename, last wins)."""
        self.directory.mkdir(parents=True, exist_ok=True)
        final = self.path(key)
        temp = final.with_name(f"{final.name}.{os.getpid()}.tmp")
        with open(temp, "wb") as handle:
            pickle.dump(result, handle, protocol=pickle.HIGHEST_PROTOCOL)
        os.replace(temp, final)


# ---------------------------------------------------------------------------
# Outcomes, stats, and the runner
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class PointOutcome:
    """What happened to one task: a result, or a structured failure.

    Attributes:
        index: the task's position in the submitted sequence (outcomes
            are returned in submission order regardless of completion
            order).
        result: the experiment result, or ``None`` if the point failed.
        error: ``None`` on success; otherwise the worker's formatted
            traceback — the sweep's other points still complete.
        elapsed_s: wall-clock seconds this point took (0 for cache hits).
        from_cache: True when the result was replayed from the cache.
    """

    index: int
    task: ExperimentTask
    result: Any | None
    error: str | None = None
    elapsed_s: float = 0.0
    from_cache: bool = False

    @property
    def ok(self) -> bool:
        return self.error is None


@dataclass
class RunnerStats:
    """Counters across a runner's lifetime (all ``run`` calls)."""

    executed: int = 0
    cached: int = 0
    failed: int = 0
    elapsed_s: float = 0.0

    def summary(self) -> str:
        """One-line summary for logs: ``3 executed, 9 cached, 0 failed``."""
        return (
            f"{self.executed} executed, {self.cached} cached, "
            f"{self.failed} failed ({self.elapsed_s:.1f}s)"
        )


#: Progress callback: (outcome, completed count, total count).
ProgressCallback = Callable[[PointOutcome, int, int], None]


def _worker(task: ExperimentTask) -> tuple[str, Any, float]:
    """Execute one task; never raise — failures travel as data.

    Runs in worker processes (spawn) and inline for ``jobs=1``; both
    paths share it so serial and parallel execution are identical.
    """
    start = time.perf_counter()
    try:
        result = task.execute()
        return ("ok", result, time.perf_counter() - start)
    except Exception:  # noqa: BLE001 - structured failure channel
        return ("error", traceback.format_exc(), time.perf_counter() - start)


class ExperimentRunner:
    """Executes independent experiment tasks, in parallel, with caching.

    Args:
        jobs: worker processes.  1 (default) runs inline in this process;
            ``None`` or 0 means one per CPU.
        cache_dir: result cache directory; ``None`` disables caching.
        use_cache: master switch — False ignores ``cache_dir`` entirely.
        progress: optional per-point completion callback.
    """

    def __init__(
        self,
        jobs: int | None = 1,
        cache_dir: str | Path | None = None,
        use_cache: bool = True,
        progress: ProgressCallback | None = None,
    ) -> None:
        if jobs is not None and jobs < 0:
            raise ConfigurationError(f"jobs must be >= 0: {jobs}")
        if not jobs:
            jobs = os.cpu_count() or 1
        self.jobs = jobs
        self.cache = ResultCache(cache_dir) if (use_cache and cache_dir) else None
        self.progress = progress
        self.stats = RunnerStats()

    # -- execution ---------------------------------------------------------

    def run(self, tasks: Sequence[ExperimentTask]) -> list[PointOutcome]:
        """Execute every task; return outcomes in submission order.

        Cached points are replayed without executing; pending points fan
        across the pool (or run inline for ``jobs=1``).  A failing point
        yields an outcome with ``error`` set — it never raises here and
        never interrupts sibling points.
        """
        started = time.perf_counter()
        outcomes: list[PointOutcome | None] = [None] * len(tasks)
        pending: list[tuple[int, ExperimentTask]] = []
        total = len(tasks)
        completed = 0

        for index, task in enumerate(tasks):
            cached = self.cache.load(task.cache_key) if self.cache else None
            if cached is not None:
                outcomes[index] = PointOutcome(
                    index, task, cached, from_cache=True
                )
                self.stats.cached += 1
                completed += 1
                self._report(outcomes[index], completed, total)
            else:
                pending.append((index, task))

        if self.jobs > 1 and len(pending) > 1:
            finished = self._run_pool(pending)
        else:
            finished = ((index, task, _worker(task)) for index, task in pending)

        for index, task, (status, payload, elapsed) in finished:
            if status == "ok":
                outcome = PointOutcome(index, task, payload, elapsed_s=elapsed)
                self.stats.executed += 1
                if self.cache:
                    self.cache.store(task.cache_key, payload)
            else:
                outcome = PointOutcome(
                    index, task, None, error=payload, elapsed_s=elapsed
                )
                self.stats.failed += 1
            outcomes[index] = outcome
            completed += 1
            self._report(outcome, completed, total)

        self.stats.elapsed_s += time.perf_counter() - started
        return [o for o in outcomes if o is not None]

    def results(self, tasks: Sequence[ExperimentTask]) -> list[Any]:
        """Like :meth:`run`, but unwrap results and raise on any failure.

        All points complete (and successful ones are cached) before the
        aggregated :class:`ExperimentError` is raised, so a re-run only
        repeats the diverging configurations.
        """
        outcomes = self.run(tasks)
        failures = [o for o in outcomes if not o.ok]
        if failures:
            details = "\n\n".join(
                f"[{o.index}] {o.task.describe()}\n{o.error}" for o in failures
            )
            raise ExperimentError(
                f"{len(failures)} of {len(outcomes)} sweep points failed:\n"
                f"{details}"
            )
        return [o.result for o in outcomes]

    # -- internals ---------------------------------------------------------

    def _run_pool(self, pending: list[tuple[int, ExperimentTask]]):
        """Fan pending tasks across a spawn pool; yield as they finish.

        ``spawn`` (not ``fork``) so workers start from a clean interpreter
        on every platform — experiments share no state, so this is purely
        a safety choice.
        """
        context = get_context("spawn")
        workers = min(self.jobs, len(pending))
        with ProcessPoolExecutor(max_workers=workers, mp_context=context) as pool:
            futures = {
                pool.submit(_worker, task): (index, task)
                for index, task in pending
            }
            remaining = set(futures)
            while remaining:
                done, remaining = wait(remaining, return_when=FIRST_COMPLETED)
                for future in done:
                    index, task = futures[future]
                    try:
                        yield index, task, future.result()
                    except Exception:  # noqa: BLE001 - pool infrastructure died
                        yield index, task, ("error", traceback.format_exc(), 0.0)

    def _report(self, outcome: PointOutcome, completed: int, total: int) -> None:
        if self.progress is not None:
            self.progress(outcome, completed, total)


def execute_all(
    tasks: Sequence[ExperimentTask], runner: ExperimentRunner | None = None
) -> list[Any]:
    """Run tasks through ``runner`` (or a throwaway serial one); unwrap.

    This is the sweep modules' entry point: passing ``runner=None``
    preserves the historical serial, uncached behavior exactly.
    """
    runner = runner or ExperimentRunner()
    return runner.results(tasks)
