"""Head-to-head runs: Table 3 (buddy) and Figure 6 (all four policies).

Table 3 reports the buddy policy's fragmentation and throughput on each
workload.  Figure 6 compares the §5 *selected* configurations — buddy,
restricted (5 sizes, grow 1, clustered), extent (first-fit, 3 ranges), and
the fixed-block baseline (4K for TS, 16K for TP/SC) — on sequential (6a)
and application (6b) performance.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..workload.driver import AllocationTestResult
from .configs import (
    SELECTED_BUDDY,
    SELECTED_RESTRICTED,
    ExperimentConfig,
    PolicyConfig,
    SystemConfig,
    selected_extent,
    selected_fixed,
)
from .experiments import PerformanceResult
from .runner import ExperimentRunner, ExperimentTask, execute_all

WORKLOADS = ("SC", "TP", "TS")


@dataclass(frozen=True)
class Table3Row:
    """One workload row of Table 3."""

    workload: str
    allocation: AllocationTestResult
    performance: PerformanceResult

    @property
    def internal_percent(self) -> float:
        return self.allocation.fragmentation.internal_percent

    @property
    def external_percent(self) -> float:
        return self.allocation.fragmentation.external_percent

    @property
    def application_percent(self) -> float:
        return self.performance.application.percent

    @property
    def sequential_percent(self) -> float:
        return self.performance.sequential.percent


def table3_buddy(
    system: SystemConfig,
    seed: int = 1991,
    app_cap_ms: float = 300_000.0,
    seq_cap_ms: float = 300_000.0,
    fill_fraction: float | None = None,
    workloads: tuple[str, ...] = WORKLOADS,
    runner: ExperimentRunner | None = None,
) -> list[Table3Row]:
    """Run the buddy policy through both §3 tests on every workload."""
    tasks = []
    for workload in workloads:
        config = ExperimentConfig(
            policy=SELECTED_BUDDY, workload=workload, system=system, seed=seed
        )
        tasks.append(ExperimentTask.allocation(config, fill_fraction=fill_fraction))
        tasks.append(
            ExperimentTask.performance(
                config, app_cap_ms=app_cap_ms, seq_cap_ms=seq_cap_ms
            )
        )
    results = execute_all(tasks, runner)
    return [
        Table3Row(workload, results[2 * i], results[2 * i + 1])
        for i, workload in enumerate(workloads)
    ]


def selected_policies(workload: str) -> list[PolicyConfig]:
    """The four §5 contenders for a workload, in the figure's order."""
    return [
        SELECTED_BUDDY,
        SELECTED_RESTRICTED,
        selected_extent(workload),
        selected_fixed(workload),
    ]


@dataclass(frozen=True)
class ComparisonCell:
    """One (policy, workload) bar of Figure 6."""

    workload: str
    policy_label: str
    performance: PerformanceResult

    @property
    def sequential_percent(self) -> float:
        return self.performance.sequential.percent

    @property
    def application_percent(self) -> float:
        return self.performance.application.percent


def figure6(
    system: SystemConfig,
    seed: int = 1991,
    app_cap_ms: float = 300_000.0,
    seq_cap_ms: float = 300_000.0,
    workloads: tuple[str, ...] = WORKLOADS,
    runner: ExperimentRunner | None = None,
) -> list[ComparisonCell]:
    """Run the four selected policies on every workload.

    The 12 cells are independent simulations; pass a ``runner`` to fan
    them across worker processes and/or replay them from the result
    cache — cell order and values are identical either way.
    """
    pairs = [
        (workload, policy)
        for workload in workloads
        for policy in selected_policies(workload)
    ]
    tasks = [
        ExperimentTask.performance(
            ExperimentConfig(policy=policy, workload=workload, system=system, seed=seed),
            app_cap_ms=app_cap_ms,
            seq_cap_ms=seq_cap_ms,
        )
        for workload, policy in pairs
    ]
    results = execute_all(tasks, runner)
    return [
        ComparisonCell(workload, policy.label, result)
        for (workload, policy), result in zip(pairs, results)
    ]
