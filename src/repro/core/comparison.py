"""Head-to-head runs: Table 3 (buddy) and Figure 6 (all four policies).

Table 3 reports the buddy policy's fragmentation and throughput on each
workload.  Figure 6 compares the §5 *selected* configurations — buddy,
restricted (5 sizes, grow 1, clustered), extent (first-fit, 3 ranges), and
the fixed-block baseline (4K for TS, 16K for TP/SC) — on sequential (6a)
and application (6b) performance.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..workload.driver import AllocationTestResult
from .configs import (
    SELECTED_BUDDY,
    SELECTED_RESTRICTED,
    ExperimentConfig,
    PolicyConfig,
    SystemConfig,
    selected_extent,
    selected_fixed,
)
from .experiments import (
    PerformanceResult,
    run_allocation_experiment,
    run_performance_experiment,
)

WORKLOADS = ("SC", "TP", "TS")


@dataclass(frozen=True)
class Table3Row:
    """One workload row of Table 3."""

    workload: str
    allocation: AllocationTestResult
    performance: PerformanceResult

    @property
    def internal_percent(self) -> float:
        return self.allocation.fragmentation.internal_percent

    @property
    def external_percent(self) -> float:
        return self.allocation.fragmentation.external_percent

    @property
    def application_percent(self) -> float:
        return self.performance.application.percent

    @property
    def sequential_percent(self) -> float:
        return self.performance.sequential.percent


def table3_buddy(
    system: SystemConfig,
    seed: int = 1991,
    app_cap_ms: float = 300_000.0,
    seq_cap_ms: float = 300_000.0,
    fill_fraction: float | None = None,
    workloads: tuple[str, ...] = WORKLOADS,
) -> list[Table3Row]:
    """Run the buddy policy through both §3 tests on every workload."""
    rows = []
    for workload in workloads:
        config = ExperimentConfig(
            policy=SELECTED_BUDDY, workload=workload, system=system, seed=seed
        )
        allocation = run_allocation_experiment(config, fill_fraction=fill_fraction)
        performance = run_performance_experiment(
            config, app_cap_ms=app_cap_ms, seq_cap_ms=seq_cap_ms
        )
        rows.append(Table3Row(workload, allocation, performance))
    return rows


def selected_policies(workload: str) -> list[PolicyConfig]:
    """The four §5 contenders for a workload, in the figure's order."""
    return [
        SELECTED_BUDDY,
        SELECTED_RESTRICTED,
        selected_extent(workload),
        selected_fixed(workload),
    ]


@dataclass(frozen=True)
class ComparisonCell:
    """One (policy, workload) bar of Figure 6."""

    workload: str
    policy_label: str
    performance: PerformanceResult

    @property
    def sequential_percent(self) -> float:
        return self.performance.sequential.percent

    @property
    def application_percent(self) -> float:
        return self.performance.application.percent


def figure6(
    system: SystemConfig,
    seed: int = 1991,
    app_cap_ms: float = 300_000.0,
    seq_cap_ms: float = 300_000.0,
    workloads: tuple[str, ...] = WORKLOADS,
) -> list[ComparisonCell]:
    """Run the four selected policies on every workload."""
    cells = []
    for workload in workloads:
        for policy in selected_policies(workload):
            config = ExperimentConfig(
                policy=policy, workload=workload, system=system, seed=seed
            )
            result = run_performance_experiment(
                config, app_cap_ms=app_cap_ms, seq_cap_ms=seq_cap_ms
            )
            cells.append(ComparisonCell(workload, policy.label, result))
    return cells
