"""Canonical configurations: the disk system of Table 1 and the policy
configurations swept by Figures 1–6.

Everything an experiment needs to be reconstructed lives here:
:class:`SystemConfig` (the disk array), the four :class:`PolicyConfig`
builders, the restricted-buddy ladders, and the per-workload extent-range
tables quoted verbatim from §4.3.
"""

from __future__ import annotations

import abc
import math
from dataclasses import dataclass, field

from ..alloc.base import Allocator
from ..alloc.buddy import BinaryBuddyAllocator
from ..alloc.extent import ExtentAllocator, ExtentSizeConfig, FitPolicy
from ..alloc.fixed import FixedBlockAllocator
from ..alloc.ffs import FfsAllocator
from ..alloc.logstructured import LogStructuredAllocator
from ..alloc.restricted import (
    RestrictedBuddyAllocator,
    RestrictedBuddyConfig,
    ladder_from_sizes,
)
from ..disk.array import DiskSystem, StripedArray
from ..disk.geometry import WREN_IV, DiskGeometry
from ..errors import ConfigurationError
from ..fault.plan import FaultSpec
from ..sim.engine import Simulator
from ..sim.rng import RandomStream
from ..units import KIB, parse_size

#: Disk organizations :meth:`SystemConfig.build_array` can construct.
ORGANIZATIONS = ("striped", "mirrored", "raid5", "parity-striped")


@dataclass(frozen=True)
class SystemConfig:
    """The disk system: Table 1's eight Wren IVs unless overridden.

    Attributes:
        scale: capacity scale factor (cylinder count).  1.0 is the paper's
            2.8 G system; tests and quick benches shrink it.  Timing
            parameters never change with scale.
        stripe_unit: bytes per disk before striping moves on — one track
            by default, the [STON89] choice.
        disk_unit: the minimum transfer unit and the allocators' address
            granularity: "the smaller of the smallest block size supported
            by the file system and the stripe size" — 1K here.
        organization: one of :data:`ORGANIZATIONS`.  ``"striped"`` (the
            configuration behind every paper result) carries no
            redundancy; the other three are §2.1's redundant options and
            the substrate for the fault-injection experiments.  For
            ``"mirrored"``, ``n_disks`` counts one copy — the system has
            twice that many spindles.
    """

    geometry: DiskGeometry = WREN_IV
    n_disks: int = 8
    stripe_unit: str | int = 24 * KIB
    disk_unit: str | int = 1 * KIB
    scale: float = 1.0
    queue_discipline: str = "fcfs"  # or "elevator" (extension)
    organization: str = "striped"

    def __post_init__(self) -> None:
        if self.organization not in ORGANIZATIONS:
            raise ConfigurationError(
                f"unknown organization {self.organization!r}; "
                f"expected one of {', '.join(ORGANIZATIONS)}"
            )
        if self.queue_discipline not in ("fcfs", "elevator"):
            raise ConfigurationError(
                f"queue_discipline: unknown discipline "
                f"{self.queue_discipline!r}; expected 'fcfs' or 'elevator'"
            )
        if not isinstance(self.n_disks, int) or self.n_disks <= 0:
            raise ConfigurationError(
                f"n_disks: need a positive drive count, got {self.n_disks!r}"
            )
        stripe = parse_size(self.stripe_unit)
        unit = parse_size(self.disk_unit)
        if stripe <= 0:
            raise ConfigurationError(
                f"stripe_unit: must be positive, got {self.stripe_unit!r}"
            )
        if unit <= 0:
            raise ConfigurationError(
                f"disk_unit: must be positive, got {self.disk_unit!r}"
            )
        if stripe % unit:
            raise ConfigurationError(
                f"stripe_unit: {stripe} bytes is not a whole number of "
                f"{unit}-byte disk units"
            )
        if not math.isfinite(self.scale) or self.scale <= 0:
            raise ConfigurationError(
                f"scale: must be positive and finite, got {self.scale!r}"
            )
        # NaN slips through DiskGeometry's own sign checks (every
        # comparison with NaN is False), then poisons seek times and the
        # stabilization rule far from the config that caused it.
        for field_name in (
            "single_track_seek_ms",
            "incremental_seek_ms",
            "rotation_ms",
            "head_switch_ms",
        ):
            value = getattr(self.geometry, field_name)
            if not math.isfinite(value):
                raise ConfigurationError(
                    f"geometry.{field_name}: must be finite, got {value!r}"
                )

    @property
    def stripe_unit_bytes(self) -> int:
        return parse_size(self.stripe_unit)

    @property
    def disk_unit_bytes(self) -> int:
        return parse_size(self.disk_unit)

    def scaled_geometry(self) -> DiskGeometry:
        """The per-drive geometry at this config's scale."""
        return self.geometry if self.scale == 1.0 else self.geometry.scaled(self.scale)

    def build_array(self, sim: Simulator) -> DiskSystem:
        """Construct the configured disk organization for a simulation run."""
        geometry = self.scaled_geometry()
        if self.organization == "striped":
            return StripedArray(
                sim,
                geometry,
                self.n_disks,
                self.stripe_unit_bytes,
                self.disk_unit_bytes,
                queue_discipline=self.queue_discipline,
            )
        from ..disk.raid import MirroredArray, ParityStripedArray, Raid5Array

        if self.organization == "mirrored":
            return MirroredArray(
                sim, geometry, self.n_disks, self.stripe_unit_bytes, self.disk_unit_bytes
            )
        if self.organization == "raid5":
            return Raid5Array(
                sim, geometry, self.n_disks, self.stripe_unit_bytes, self.disk_unit_bytes
            )
        return ParityStripedArray(sim, geometry, self.n_disks, self.disk_unit_bytes)

    @property
    def capacity_bytes(self) -> int:
        """Usable data capacity at this scale, per the organization."""
        per_drive = self.scaled_geometry().capacity_bytes
        if self.organization == "parity-striped":
            per_drive -= per_drive % self.disk_unit_bytes
            return int(per_drive * self.n_disks * (self.n_disks - 1) / self.n_disks)
        per_drive -= per_drive % self.stripe_unit_bytes
        if self.organization == "raid5":
            return per_drive * (self.n_disks - 1)
        # striped: all spindles are data; mirrored: one copy's worth.
        return per_drive * self.n_disks


#: The paper's configuration (full scale).
PAPER_SYSTEM = SystemConfig()


# ---------------------------------------------------------------------------
# Policy configurations
# ---------------------------------------------------------------------------


class PolicyConfig(abc.ABC):
    """A buildable, labelled allocation-policy configuration."""

    @abc.abstractmethod
    def build(
        self, capacity_units: int, disk_unit_bytes: int, rng: RandomStream
    ) -> Allocator:
        """Instantiate the allocator for a given address space."""

    @property
    @abc.abstractmethod
    def label(self) -> str:
        """Human-readable configuration label for reports."""


@dataclass(frozen=True)
class BuddyPolicy(PolicyConfig):
    """§4.1: Koch's binary buddy (no nightly reallocator)."""

    def build(self, capacity_units, disk_unit_bytes, rng):
        return BinaryBuddyAllocator(capacity_units, rng)

    @property
    def label(self) -> str:
        return "buddy"


@dataclass(frozen=True)
class RestrictedPolicy(PolicyConfig):
    """§4.2: the restricted buddy system."""

    block_sizes: tuple[str, ...] = ("1K", "8K", "64K", "1M", "16M")
    grow_factor: int = 1
    clustered: bool = True
    region_size: str | int = "32M"

    def build(self, capacity_units, disk_unit_bytes, rng):
        ladder = ladder_from_sizes(list(self.block_sizes), disk_unit_bytes)
        region_units = parse_size(self.region_size) // disk_unit_bytes
        config = RestrictedBuddyConfig(
            block_sizes_units=ladder,
            grow_factor=self.grow_factor,
            clustered=self.clustered,
            region_units=region_units,
        )
        return RestrictedBuddyAllocator(capacity_units, config, rng)

    @property
    def label(self) -> str:
        mode = "clustered" if self.clustered else "unclustered"
        return (
            f"restricted[{len(self.block_sizes)} sizes, g={self.grow_factor}, "
            f"{mode}]"
        )


@dataclass(frozen=True)
class ExtentPolicy(PolicyConfig):
    """§4.3: extent-based allocation."""

    range_means: tuple[str, ...] = ("512K", "1M", "16M")
    fit: str = "first"  # "first" or "best"

    def build(self, capacity_units, disk_unit_bytes, rng):
        means = tuple(
            sorted(parse_size(m) // disk_unit_bytes for m in self.range_means)
        )
        if any(m == 0 for m in means):
            raise ConfigurationError("extent range below one disk unit")
        fit = FitPolicy.FIRST_FIT if self.fit == "first" else FitPolicy.BEST_FIT
        return ExtentAllocator(
            capacity_units, ExtentSizeConfig(range_means_units=means), fit, rng
        )

    @property
    def label(self) -> str:
        return f"extent[{len(self.range_means)} ranges, {self.fit}-fit]"


@dataclass(frozen=True)
class FixedPolicy(PolicyConfig):
    """§5 baseline: fixed block size, no contiguity or striping bias.

    ``aged`` (default True) scrambles the initial free list, modelling the
    long-lived system the paper compares against rather than a fresh mkfs.
    """

    block_size: str | int = "4K"
    aged: bool = True

    def build(self, capacity_units, disk_unit_bytes, rng):
        block_units = parse_size(self.block_size) // disk_unit_bytes
        return FixedBlockAllocator(capacity_units, block_units, rng, aged=self.aged)

    @property
    def label(self) -> str:
        return f"fixed[{self.block_size}]"


@dataclass(frozen=True)
class FfsPolicy(PolicyConfig):
    """Extension (paper §1): BSD FFS-style blocks + fragments."""

    block_size: str | int = "8K"

    def build(self, capacity_units, disk_unit_bytes, rng):
        block_units = parse_size(self.block_size) // disk_unit_bytes
        return FfsAllocator(capacity_units, block_units, rng=rng)

    @property
    def label(self) -> str:
        return f"ffs[{self.block_size} blocks]"


@dataclass(frozen=True)
class LogStructuredPolicy(PolicyConfig):
    """Extension (paper §6): threaded-log, write-optimized allocation."""

    def build(self, capacity_units, disk_unit_bytes, rng):
        return LogStructuredAllocator(capacity_units, rng)

    @property
    def label(self) -> str:
        return "log-structured"


# ---------------------------------------------------------------------------
# The paper's sweep tables
# ---------------------------------------------------------------------------

#: §4.2: "We consider four different block size configurations."
RESTRICTED_LADDERS: dict[int, tuple[str, ...]] = {
    2: ("1K", "8K"),
    3: ("1K", "8K", "64K"),
    4: ("1K", "8K", "64K", "1M"),
    5: ("1K", "8K", "64K", "1M", "16M"),
}

#: §4.2 sweep axes: grow factors and clustering.
RESTRICTED_GROW_FACTORS = (1, 2)
RESTRICTED_CLUSTERING = (True, False)

#: §4.3's extent-range table for the TS workload.
EXTENT_RANGES_TS: dict[int, tuple[str, ...]] = {
    1: ("4K",),
    2: ("1K", "8K"),
    3: ("1K", "8K", "1M"),
    4: ("1K", "4K", "8K", "1M"),
    5: ("1K", "4K", "8K", "16K", "1M"),
}

#: §4.3's extent-range table for TP and SC ("10" read as 10M).
EXTENT_RANGES_TP_SC: dict[int, tuple[str, ...]] = {
    1: ("512K",),
    2: ("512K", "16M"),
    3: ("512K", "1M", "16M"),
    4: ("512K", "1M", "10M", "16M"),
    5: ("10K", "512K", "1M", "10M", "16M"),
}


def extent_ranges_for(workload: str, n_ranges: int) -> tuple[str, ...]:
    """The paper's extent-range means for a workload and range count."""
    table = EXTENT_RANGES_TS if workload.upper() == "TS" else EXTENT_RANGES_TP_SC
    if n_ranges not in table:
        raise ConfigurationError(f"no {n_ranges}-range config for {workload}")
    return table[n_ranges]


# ---------------------------------------------------------------------------
# §5's selected head-to-head configurations (Figure 6)
# ---------------------------------------------------------------------------

#: "we will select a clustered configuration ... grow factor of 1 ...
#: the 5 block size configuration (1K, 8K, 64K, 1M, 16M)".
SELECTED_RESTRICTED = RestrictedPolicy(
    block_sizes=RESTRICTED_LADDERS[5], grow_factor=1, clustered=True
)

#: "we select the first fit allocation policy ... the 3 range sizes".
def selected_extent(workload: str) -> ExtentPolicy:
    """The §5 extent configuration for a given workload."""
    return ExtentPolicy(range_means=extent_ranges_for(workload, 3), fit="first")


#: "The 4K system is compared with the timesharing workload while the 16K
#: is compared for the transaction processing and supercomputer workloads."
def selected_fixed(workload: str) -> FixedPolicy:
    """The §5 fixed-block baseline for a given workload."""
    return FixedPolicy(block_size="4K" if workload.upper() == "TS" else "16K")


SELECTED_BUDDY = BuddyPolicy()


@dataclass(frozen=True)
class ExperimentConfig:
    """Everything identifying one experiment run.

    ``faults`` (default ``None``: the fault-free model, bit-identical to
    the pre-fault-subsystem code) attaches a declarative
    :class:`~repro.fault.plan.FaultSpec`; the injector's random streams
    derive from ``seed``, so a (config, seed, faults) triple is fully
    reproducible and cache-keyable like every other field.
    """

    policy: PolicyConfig
    workload: str  # "TS" | "TP" | "SC"
    system: SystemConfig = field(default_factory=SystemConfig)
    seed: int = 1991
    fill_fraction: float = 0.91
    faults: FaultSpec | None = None

    def describe(self) -> str:
        """One-line run description for logs and reports."""
        base = (
            f"{self.policy.label} / {self.workload} @ scale "
            f"{self.system.scale:g}, seed {self.seed}"
        )
        if self.faults is not None and not self.faults.empty:
            base += f" [faults: {self.faults.describe()}]"
        return base
