"""repro — Read Optimized File System Designs: A Performance Evaluation.

A full reproduction of Seltzer & Stonebraker's ICDE 1991 simulation study:
an event-driven, stochastic workload simulator of a file system on a disk
array, comparing three read-optimized multiblock allocation policies
(Koch's binary buddy, the restricted buddy system, and XPRS-style extent
allocation) against a fixed-block baseline on the paper's three synthetic
workloads (time sharing, transaction processing, supercomputing).

Quickstart::

    from repro import (ExperimentConfig, SystemConfig, RestrictedPolicy,
                       run_performance_experiment)

    config = ExperimentConfig(
        policy=RestrictedPolicy(),      # 1K..16M ladder, grow 1, clustered
        workload="SC",
        system=SystemConfig(scale=0.1),  # a 280 M slice of the 2.8 G array
    )
    result = run_performance_experiment(config)
    print(f"sequential: {result.sequential.percent:.1f}% of max bandwidth")

The package layering (bottom to top): ``sim`` (event engine) → ``disk``
(drive timing + array organizations) → ``alloc`` (the policies) → ``fs``
(files) → ``workload`` (the §2.2 profiles) → ``core`` (the §3 tests and
the per-figure sweeps) → ``report`` (tables / text figures).  ``fault``
sits beside ``disk``: declarative fault plans injected into a running
simulation, with degraded-mode service on the redundant organizations.
"""

from .alloc import (
    AllocFile,
    Allocator,
    BinaryBuddyAllocator,
    Extent,
    ExtentAllocator,
    ExtentSizeConfig,
    FfsAllocator,
    FitPolicy,
    FixedBlockAllocator,
    FragmentationReport,
    LogStructuredAllocator,
    RestrictedBuddyAllocator,
    RestrictedBuddyConfig,
    measure_fragmentation,
)
from .core import (
    PAPER_SYSTEM,
    BuddyPolicy,
    ExperimentConfig,
    ExperimentRunner,
    ExperimentTask,
    ExtentPolicy,
    FfsPolicy,
    FixedPolicy,
    LogStructuredPolicy,
    PerformanceResult,
    RestrictedPolicy,
    SystemConfig,
    figure6,
    grow_factor_ablation,
    run_allocation_experiment,
    run_performance_experiment,
    selected_policies,
    sweep_extent_fragmentation,
    sweep_extent_performance,
    sweep_restricted_fragmentation,
    sweep_restricted_performance,
    table3_buddy,
)
from .disk import (
    WREN_IV,
    DiskGeometry,
    DiskSystem,
    IoKind,
    MirroredArray,
    ParityStripedArray,
    Raid5Array,
    StripedArray,
)
from .audit import (
    AuditConfig,
    DivergenceReport,
    Fingerprint,
    InvariantAuditor,
    bisect_divergence,
)
from .errors import (
    AllocationError,
    AllocatorStateError,
    ConfigurationError,
    DataUnavailableError,
    DiskFullError,
    ExperimentError,
    FaultError,
    FileSystemError,
    InvariantViolation,
    ReproError,
    SimulationError,
    SweepInterrupted,
)
from .fault import (
    DiskFailure,
    FaultInjector,
    FaultSpec,
    FaultSummary,
    SlowDisk,
    TransientFaults,
    parse_fault_spec,
)
from .fs import FileSystem, FsFile
from .obs import (
    MetricsRegistry,
    SweepTelemetry,
    TraceData,
    Tracer,
    trace_to_chrome,
    trace_to_jsonl,
)
from .sim import RandomStream, Simulator, ThroughputMeter
from .workload import (
    Profile,
    WorkloadDriver,
    mini,
    run_allocation_until_full,
    supercomputer,
    time_sharing,
    transaction_processing,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # sim
    "Simulator",
    "RandomStream",
    "ThroughputMeter",
    # disk
    "DiskGeometry",
    "WREN_IV",
    "DiskSystem",
    "StripedArray",
    "MirroredArray",
    "Raid5Array",
    "ParityStripedArray",
    "IoKind",
    # alloc
    "Allocator",
    "AllocFile",
    "Extent",
    "BinaryBuddyAllocator",
    "RestrictedBuddyAllocator",
    "RestrictedBuddyConfig",
    "ExtentAllocator",
    "ExtentSizeConfig",
    "FfsAllocator",
    "FitPolicy",
    "FixedBlockAllocator",
    "LogStructuredAllocator",
    "FragmentationReport",
    "measure_fragmentation",
    # fs
    "FileSystem",
    "FsFile",
    # workload
    "Profile",
    "time_sharing",
    "transaction_processing",
    "supercomputer",
    "mini",
    "WorkloadDriver",
    "run_allocation_until_full",
    # core
    "SystemConfig",
    "PAPER_SYSTEM",
    "ExperimentConfig",
    "ExperimentRunner",
    "ExperimentTask",
    "BuddyPolicy",
    "RestrictedPolicy",
    "ExtentPolicy",
    "FfsPolicy",
    "FixedPolicy",
    "LogStructuredPolicy",
    "PerformanceResult",
    "run_allocation_experiment",
    "run_performance_experiment",
    "selected_policies",
    "table3_buddy",
    "figure6",
    "grow_factor_ablation",
    "sweep_restricted_fragmentation",
    "sweep_restricted_performance",
    "sweep_extent_fragmentation",
    "sweep_extent_performance",
    # obs
    "Tracer",
    "TraceData",
    "MetricsRegistry",
    "SweepTelemetry",
    "trace_to_chrome",
    "trace_to_jsonl",
    # fault
    "FaultSpec",
    "DiskFailure",
    "SlowDisk",
    "TransientFaults",
    "parse_fault_spec",
    "FaultInjector",
    "FaultSummary",
    # audit
    "AuditConfig",
    "InvariantAuditor",
    "Fingerprint",
    "DivergenceReport",
    "bisect_divergence",
    # errors
    "ReproError",
    "InvariantViolation",
    "ConfigurationError",
    "SimulationError",
    "AllocationError",
    "AllocatorStateError",
    "DiskFullError",
    "ExperimentError",
    "FileSystemError",
    "FaultError",
    "DataUnavailableError",
    "SweepInterrupted",
]
