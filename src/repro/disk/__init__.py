"""The disk system: drive timing, queueing, and array organizations."""

from .array import ConcatArray, DiskSystem, StripedArray
from .drive import DiskDrive
from .geometry import TINY_DISK, WREN_IV, DiskGeometry, paper_array_capacity_bytes
from .queue import QueuedDrive
from .raid import MirroredArray, ParityStripedArray, Raid5Array
from .request import ZERO_BREAKDOWN, DiskRequest, IoKind, ServiceBreakdown

__all__ = [
    "DiskGeometry",
    "WREN_IV",
    "TINY_DISK",
    "paper_array_capacity_bytes",
    "DiskDrive",
    "QueuedDrive",
    "DiskRequest",
    "IoKind",
    "ServiceBreakdown",
    "ZERO_BREAKDOWN",
    "DiskSystem",
    "StripedArray",
    "ConcatArray",
    "MirroredArray",
    "Raid5Array",
    "ParityStripedArray",
]
