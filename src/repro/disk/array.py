"""Disk organizations: the linear address space the allocators see.

"The disk system is designed to allow multiple heterogeneous devices"
configured as an array, mirrored pair, RAID, or parity-striped set.  This
module holds the common interface plus the two parity-free organizations:

* :class:`StripedArray` — the configuration behind every result in the
  paper: data striped round-robin across N identical drives in *stripe
  unit* chunks; the allocators address the array in *disk units*.
* :class:`ConcatArray` — simple concatenation (files live on one disk),
  the data layout underneath Gray/Walker parity striping.

Two parameters characterize a striped layout, exactly as in §2.1:

* **stripe unit** — bytes allocated on one disk before moving to the next;
  must be at least the sector size of every disk.
* **disk unit** — the minimum unit of transfer between disk and memory:
  the smaller of the smallest file-system block size and the stripe size.
  Disks are *addressed* in disk units.
"""

from __future__ import annotations

import abc

from ..errors import ConfigurationError, DataUnavailableError, InvalidRequestError
from ..sim.engine import AllOf, Simulator, Waitable
from .geometry import DiskGeometry
from .queue import QueuedDrive
from .request import DiskRequest, IoKind


class DiskSystem(abc.ABC):
    """Common interface of every disk organization.

    A disk system exposes a linear address space measured in disk units;
    :meth:`transfer` maps a linear span onto per-drive requests and returns
    a waitable that succeeds when the whole span has moved.
    """

    def __init__(self, sim: Simulator, disk_unit_bytes: int) -> None:
        if disk_unit_bytes <= 0:
            raise ConfigurationError("disk unit must be positive")
        self.sim = sim
        self.disk_unit_bytes = disk_unit_bytes
        self.drives: list[QueuedDrive] = []
        #: Optional ThroughputMeter credited as each drive request completes.
        self.meter = None
        #: Attached by :class:`~repro.fault.injector.FaultInjector`; None
        #: for every fault-free simulation.
        self.fault_injector = None

    # -- geometry -----------------------------------------------------------

    @property
    @abc.abstractmethod
    def capacity_bytes(self) -> int:
        """Usable (data) capacity in bytes."""

    @property
    def capacity_units(self) -> int:
        """Usable capacity in disk units (the allocators' address space)."""
        return self.capacity_bytes // self.disk_unit_bytes

    @property
    def max_bandwidth_bytes_per_ms(self) -> float:
        """Peak sustained sequential bandwidth of the whole system.

        All throughput results are normalized against this (the paper's
        "percent of maximum available capacity").
        """
        return sum(d.geometry.sustained_bytes_per_ms for d in self.drives)

    # -- I/O -----------------------------------------------------------------

    @abc.abstractmethod
    def transfer(self, kind: IoKind, start_unit: int, n_units: int) -> Waitable:
        """Move ``n_units`` disk units starting at linear ``start_unit``."""

    def _check_span(self, start_unit: int, n_units: int) -> None:
        if n_units <= 0:
            raise InvalidRequestError(f"non-positive transfer: {n_units}")
        if start_unit < 0 or start_unit + n_units > self.capacity_units:
            raise InvalidRequestError(
                f"transfer [{start_unit}, {start_unit + n_units}) outside "
                f"capacity {self.capacity_units} units"
            )

    # -- faults ----------------------------------------------------------------

    @staticmethod
    def _drive_available(drive: QueuedDrive) -> bool:
        """True unless a fault injector has taken the drive offline."""
        state = drive.fault_state
        return state is None or state.available

    @property
    def degraded(self) -> bool:
        """True while any drive is failed or rebuilding."""
        return any(not self._drive_available(d) for d in self.drives)

    def start_rebuild(self, drive_index: int, rows_per_chunk: int):
        """A generator that streams the failed drive's contents back.

        Returns ``None`` when the organization has no redundancy to
        rebuild from (the base case): the replacement drive simply comes
        online, its contents restored out of band.  Redundant
        organizations override this with a process that reads surviving
        copies/parity and writes the replacement, chunk by chunk through
        the ordinary queues — which is exactly how rebuild traffic
        competes with foreground I/O for bandwidth.
        """
        return None

    # -- statistics ------------------------------------------------------------

    @property
    def total_bytes_moved(self) -> int:
        """Bytes transferred across all drives since construction."""
        return sum(d.bytes_moved for d in self.drives)

    def busy_fraction(self, elapsed_ms: float) -> float:
        """Mean per-drive busy fraction over ``elapsed_ms``."""
        if not self.drives or elapsed_ms <= 0:
            return 0.0
        return sum(d.utilization(elapsed_ms) for d in self.drives) / len(self.drives)


def _merge_runs(runs: list[tuple[int, int]]) -> list[tuple[int, int]]:
    """Merge byte runs that are contiguous on the same drive."""
    merged: list[tuple[int, int]] = []
    for start, length in runs:
        if merged and merged[-1][0] + merged[-1][1] == start:
            merged[-1] = (merged[-1][0], merged[-1][1] + length)
        else:
            merged.append((start, length))
    return merged


class StripedArray(DiskSystem):
    """Round-robin striping across N identical drives.

    Linear stripe ``s`` lives on drive ``s % N`` at per-drive offset
    ``(s // N) * stripe_unit``, so a span of at least N consecutive stripes
    touches every drive with one contiguous per-drive run — the property
    the read-optimized policies exploit to "force striping" and reach the
    array's aggregate bandwidth with a single logical request.
    """

    def __init__(
        self,
        sim: Simulator,
        geometry: DiskGeometry,
        n_disks: int,
        stripe_unit_bytes: int,
        disk_unit_bytes: int,
        queue_discipline: str = "fcfs",
    ) -> None:
        super().__init__(sim, disk_unit_bytes)
        if n_disks <= 0:
            raise ConfigurationError("need at least one disk")
        if stripe_unit_bytes <= 0 or stripe_unit_bytes % disk_unit_bytes:
            raise ConfigurationError(
                "stripe unit must be a positive multiple of the disk unit"
            )
        per_drive = geometry.capacity_bytes
        if per_drive % stripe_unit_bytes:
            # Round each drive down to whole stripes; the sliver is unusable.
            per_drive -= per_drive % stripe_unit_bytes
        self.geometry = geometry
        self.n_disks = n_disks
        self.stripe_unit_bytes = stripe_unit_bytes
        self._per_drive_bytes = per_drive
        self.drives = [
            QueuedDrive(
                sim, geometry, owner=self, discipline=queue_discipline, index=i
            )
            for i in range(n_disks)
        ]

    @property
    def capacity_bytes(self) -> int:
        return self._per_drive_bytes * self.n_disks

    def locate_unit(self, unit: int) -> tuple[int, int]:
        """Map a linear disk-unit address to ``(drive index, drive byte)``."""
        byte = unit * self.disk_unit_bytes
        stripe, offset = divmod(byte, self.stripe_unit_bytes)
        drive = stripe % self.n_disks
        row = stripe // self.n_disks
        return drive, row * self.stripe_unit_bytes + offset

    def _per_drive_runs(
        self, start_unit: int, n_units: int
    ) -> list[list[tuple[int, int]]]:
        """Split a linear span into contiguous per-drive byte runs."""
        runs: list[list[tuple[int, int]]] = [[] for _ in range(self.n_disks)]
        byte = start_unit * self.disk_unit_bytes
        remaining = n_units * self.disk_unit_bytes
        su = self.stripe_unit_bytes
        while remaining > 0:
            stripe, offset = divmod(byte, su)
            chunk = min(su - offset, remaining)
            drive = stripe % self.n_disks
            row = stripe // self.n_disks
            runs[drive].append((row * su + offset, chunk))
            byte += chunk
            remaining -= chunk
        return [_merge_runs(r) for r in runs]

    def transfer(self, kind: IoKind, start_unit: int, n_units: int) -> Waitable:
        """One fused pass: split, merge, validate, submit.

        The former ``_per_drive_runs`` → ``_merge_runs`` → submit-loop
        pipeline built three generations of intermediate lists per
        transfer; here the per-drive runs are accumulated already merged
        (chunks arrive in ascending byte order, so adjacency is a tail
        check), with a short-circuit for the single-stripe-unit transfers
        that dominate small-request workloads.  Requests are still
        validated against offline drives before anything is submitted,
        and submission stays drive-major — the produced request stream is
        identical to the unfused path's.
        """
        if n_units <= 0:
            raise InvalidRequestError(f"non-positive transfer: {n_units}")
        if start_unit < 0 or start_unit + n_units > self.capacity_units:
            raise InvalidRequestError(
                f"transfer [{start_unit}, {start_unit + n_units}) outside "
                f"capacity {self.capacity_units} units"
            )
        unit = self.disk_unit_bytes
        su = self.stripe_unit_bytes
        n_disks = self.n_disks
        drives = self.drives
        stripe, offset = divmod(start_unit * unit, su)
        remaining = n_units * unit
        if offset + remaining <= su:
            # Entirely inside one stripe unit: one drive, one request.
            drive = drives[stripe % n_disks]
            state = drive.fault_state
            if state is not None and not state.available:
                raise DataUnavailableError(
                    f"drive {stripe % n_disks} is offline and the striped "
                    f"array has no redundancy to mask it"
                )
            request = DiskRequest(
                kind, (stripe // n_disks) * su + offset, remaining
            )
            return AllOf([drive.submit(request)])
        per_drive: list[list[tuple[int, int]] | None] = [None] * n_disks
        while remaining > 0:
            chunk = su - offset
            if chunk > remaining:
                chunk = remaining
            row, drive_index = divmod(stripe, n_disks)
            start_byte = row * su + offset
            runs = per_drive[drive_index]
            if runs is None:
                per_drive[drive_index] = [(start_byte, chunk)]
            else:
                last_start, last_length = runs[-1]
                if last_start + last_length == start_byte:
                    runs[-1] = (last_start, start_byte + chunk - last_start)
                else:
                    runs.append((start_byte, chunk))
            remaining -= chunk
            stripe += 1
            offset = 0
        # Validate before submitting anything: a span that touches an
        # offline drive must fail whole, not leave sibling requests queued.
        for drive_index, runs in enumerate(per_drive):
            if runs is not None and not self._drive_available(drives[drive_index]):
                # No redundancy: data on a failed drive is simply gone
                # until the replacement arrives.  The workload layer
                # treats this like any other transient operation failure.
                raise DataUnavailableError(
                    f"drive {drive_index} is offline and the striped array "
                    f"has no redundancy to mask it"
                )
        completions: list[Waitable] = []
        for drive_index, runs in enumerate(per_drive):
            if runs is None:
                continue
            submit = drives[drive_index].submit
            for start_byte, length in runs:
                completions.append(submit(DiskRequest(kind, start_byte, length)))
        return AllOf(completions)


class ConcatArray(DiskSystem):
    """Concatenation (JBOD): linear space is disk 0, then disk 1, ...

    Used by the parity-striped organization, where "files are allocated to
    single disks" and only the parity is spread.
    """

    def __init__(
        self,
        sim: Simulator,
        geometry: DiskGeometry,
        n_disks: int,
        disk_unit_bytes: int,
    ) -> None:
        super().__init__(sim, disk_unit_bytes)
        if n_disks <= 0:
            raise ConfigurationError("need at least one disk")
        per_drive = geometry.capacity_bytes
        per_drive -= per_drive % disk_unit_bytes
        self.geometry = geometry
        self.n_disks = n_disks
        self._per_drive_bytes = per_drive
        self.drives = [
            QueuedDrive(sim, geometry, owner=self, index=i)
            for i in range(n_disks)
        ]

    @property
    def capacity_bytes(self) -> int:
        return self._per_drive_bytes * self.n_disks

    def locate_unit(self, unit: int) -> tuple[int, int]:
        """Map a linear disk-unit address to ``(drive index, drive byte)``."""
        byte = unit * self.disk_unit_bytes
        return byte // self._per_drive_bytes, byte % self._per_drive_bytes

    def transfer(self, kind: IoKind, start_unit: int, n_units: int) -> Waitable:
        self._check_span(start_unit, n_units)
        byte = start_unit * self.disk_unit_bytes
        remaining = n_units * self.disk_unit_bytes
        completions: list[Waitable] = []
        while remaining > 0:
            drive_index, drive_byte = byte // self._per_drive_bytes, byte % self._per_drive_bytes
            chunk = min(self._per_drive_bytes - drive_byte, remaining)
            request = DiskRequest(kind, drive_byte, chunk)
            completions.append(self.drives[drive_index].submit(request))
            byte += chunk
            remaining -= chunk
        return AllOf(completions)
