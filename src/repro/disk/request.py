"""Disk request and service-time breakdown types."""

from __future__ import annotations

import enum

from ..errors import InvalidRequestError


class IoKind(enum.Enum):
    """Direction of a transfer.  Reads and writes cost the same in this
    model (no write-behind caching is simulated; the policies under study
    differ in *layout*, not in caching)."""

    READ = "read"
    WRITE = "write"


class DiskRequest:
    """A contiguous transfer on a single physical drive.

    Addresses are byte offsets on that drive (the array layer translates
    linear/striped addresses into these).  Hand-rolled rather than a
    frozen dataclass: one is built per physical transfer, and the plain
    ``__init__`` skips the generated init's ``object.__setattr__`` round
    trips while keeping value equality and the read-only contract.
    """

    __slots__ = ("kind", "start_byte", "n_bytes")

    def __init__(self, kind: IoKind, start_byte: int, n_bytes: int) -> None:
        if start_byte < 0:
            raise InvalidRequestError(f"negative start: {start_byte}")
        if n_bytes <= 0:
            raise InvalidRequestError(f"non-positive length: {n_bytes}")
        object.__setattr__(self, "kind", kind)
        object.__setattr__(self, "start_byte", start_byte)
        object.__setattr__(self, "n_bytes", n_bytes)

    @property
    def end_byte(self) -> int:
        """One past the last byte transferred."""
        return self.start_byte + self.n_bytes

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError(f"request field {name!r} is read-only")

    def __delattr__(self, name: str) -> None:
        raise AttributeError(f"request field {name!r} is read-only")

    def __eq__(self, other: object) -> bool:
        if other.__class__ is DiskRequest:
            return (
                self.kind is other.kind
                and self.start_byte == other.start_byte
                and self.n_bytes == other.n_bytes
            )
        return NotImplemented

    def __hash__(self) -> int:
        return hash((self.kind, self.start_byte, self.n_bytes))

    def __repr__(self) -> str:
        return (
            f"DiskRequest(kind={self.kind!r}, start_byte={self.start_byte}, "
            f"n_bytes={self.n_bytes})"
        )


class ServiceBreakdown:
    """Where the service time of one request went.

    Attributes:
        seek_ms: head movement before the transfer begins.
        rotation_ms: rotational delay waiting for the first byte.
        transfer_ms: media transfer, including intra-transfer cylinder
            crossings and head switches.
        total_ms: their sum, precomputed — the queue, meters, and metrics
            all read it several times per request.

    Hand-rolled immutable slots class for the same reason as
    :class:`DiskRequest`: one per request served.
    """

    __slots__ = ("seek_ms", "rotation_ms", "transfer_ms", "total_ms")

    def __init__(
        self, seek_ms: float, rotation_ms: float, transfer_ms: float
    ) -> None:
        object.__setattr__(self, "seek_ms", seek_ms)
        object.__setattr__(self, "rotation_ms", rotation_ms)
        object.__setattr__(self, "transfer_ms", transfer_ms)
        object.__setattr__(
            self, "total_ms", seek_ms + rotation_ms + transfer_ms
        )

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError(f"breakdown field {name!r} is read-only")

    def __delattr__(self, name: str) -> None:
        raise AttributeError(f"breakdown field {name!r} is read-only")

    def __eq__(self, other: object) -> bool:
        if other.__class__ is ServiceBreakdown:
            return (
                self.seek_ms == other.seek_ms
                and self.rotation_ms == other.rotation_ms
                and self.transfer_ms == other.transfer_ms
            )
        return NotImplemented

    def __hash__(self) -> int:
        return hash((self.seek_ms, self.rotation_ms, self.transfer_ms))

    def __repr__(self) -> str:
        return (
            f"ServiceBreakdown(seek_ms={self.seek_ms}, "
            f"rotation_ms={self.rotation_ms}, transfer_ms={self.transfer_ms})"
        )

    def __add__(self, other: "ServiceBreakdown") -> "ServiceBreakdown":
        return ServiceBreakdown(
            self.seek_ms + other.seek_ms,
            self.rotation_ms + other.rotation_ms,
            self.transfer_ms + other.transfer_ms,
        )

    def scaled(self, factor: float) -> "ServiceBreakdown":
        """Every component scaled by ``factor`` (slow-disk fault model)."""
        if factor < 0:
            raise InvalidRequestError(f"negative service scale: {factor}")
        if factor == 1.0:
            return self
        return ServiceBreakdown(
            self.seek_ms * factor,
            self.rotation_ms * factor,
            self.transfer_ms * factor,
        )


#: Identity element for summing breakdowns.
ZERO_BREAKDOWN = ServiceBreakdown(0.0, 0.0, 0.0)
