"""Disk request and service-time breakdown types."""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..errors import InvalidRequestError


class IoKind(enum.Enum):
    """Direction of a transfer.  Reads and writes cost the same in this
    model (no write-behind caching is simulated; the policies under study
    differ in *layout*, not in caching)."""

    READ = "read"
    WRITE = "write"


@dataclass(frozen=True)
class DiskRequest:
    """A contiguous transfer on a single physical drive.

    Addresses are byte offsets on that drive (the array layer translates
    linear/striped addresses into these).
    """

    kind: IoKind
    start_byte: int
    n_bytes: int

    def __post_init__(self) -> None:
        if self.start_byte < 0:
            raise InvalidRequestError(f"negative start: {self.start_byte}")
        if self.n_bytes <= 0:
            raise InvalidRequestError(f"non-positive length: {self.n_bytes}")

    @property
    def end_byte(self) -> int:
        """One past the last byte transferred."""
        return self.start_byte + self.n_bytes


@dataclass(frozen=True)
class ServiceBreakdown:
    """Where the service time of one request went.

    Attributes:
        seek_ms: head movement before the transfer begins.
        rotation_ms: rotational delay waiting for the first byte.
        transfer_ms: media transfer, including intra-transfer cylinder
            crossings and head switches.
    """

    seek_ms: float
    rotation_ms: float
    transfer_ms: float

    @property
    def total_ms(self) -> float:
        """Total service time."""
        return self.seek_ms + self.rotation_ms + self.transfer_ms

    def __add__(self, other: "ServiceBreakdown") -> "ServiceBreakdown":
        return ServiceBreakdown(
            self.seek_ms + other.seek_ms,
            self.rotation_ms + other.rotation_ms,
            self.transfer_ms + other.transfer_ms,
        )

    def scaled(self, factor: float) -> "ServiceBreakdown":
        """Every component scaled by ``factor`` (slow-disk fault model)."""
        if factor < 0:
            raise InvalidRequestError(f"negative service scale: {factor}")
        if factor == 1.0:
            return self
        return ServiceBreakdown(
            self.seek_ms * factor,
            self.rotation_ms * factor,
            self.transfer_ms * factor,
        )


#: Identity element for summing breakdowns.
ZERO_BREAKDOWN = ServiceBreakdown(0.0, 0.0, 0.0)
