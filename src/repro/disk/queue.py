"""FCFS request queue in front of each drive.

The paper does not study queueing disciplines (no policy under evaluation
touches scheduling), so requests are served first-come first-served — the
1991-era default.  Each drive is busy with exactly one request at a time;
submission returns a :class:`~repro.sim.engine.Waitable` that succeeds with
the request's :class:`~repro.disk.request.ServiceBreakdown` when the
transfer completes.

Observability: when the owning simulator carries a tracer, each request
becomes a span tree on the drive's trace lane — ``disk.read``/``disk.write``
(submit to completion) with a ``disk.queue`` child (submit to service
start) and a ``disk.service`` child (service start to completion, with the
seek/rotation/transfer breakdown in its args).  When it carries a metrics
registry, queue-wait and service latencies land in fixed-bucket histograms
and the seek/rotation/transfer split accumulates in float totals.  Both
are guarded by ``is not None`` checks, record at times the queue already
computes, and schedule nothing — the served event sequence is identical
with or without them.
"""

from __future__ import annotations

from collections import deque

from ..errors import InvalidRequestError, SimulationError

from ..sim.engine import Simulator, Waitable
from ..sim.stats import Tally
from .drive import DiskDrive
from .geometry import DiskGeometry
from .request import DiskRequest, IoKind, ServiceBreakdown


class QueuedDrive:
    """One drive plus its FCFS queue, wired into the event engine.

    Args:
        owner: the disk system this drive belongs to; when the owner has a
            ``meter``, every completed request is credited to it over its
            service span.  Metering at the drive level counts the bytes the
            disk system actually moved, request by request, so long
            logical transfers credit every interval they occupy.
        discipline: ``"fcfs"`` (the 1991 default used for every paper
            result) or ``"elevator"`` (SCAN: serve the nearest request in
            the current sweep direction — an extension for studying
            scheduling sensitivity).
        index: this drive's position in the owning organization; names
            the drive's trace lane and metrics.
    """

    def __init__(
        self,
        sim: Simulator,
        geometry: DiskGeometry,
        owner: object | None = None,
        discipline: str = "fcfs",
        index: int = 0,
    ) -> None:
        if discipline not in ("fcfs", "elevator"):
            raise SimulationError(f"unknown queue discipline {discipline!r}")
        self.sim = sim
        self.owner = owner
        self.discipline = discipline
        self.index = index
        self._use_elevator = discipline == "elevator"
        self.drive = DiskDrive(geometry)
        self._direction = 1  # elevator sweep direction
        self._queue: deque[tuple[DiskRequest, Waitable, float, tuple | None]] = deque()
        self._busy = False
        self.busy_ms = 0.0
        self.bytes_moved = 0
        self.requests_served = 0
        self.requests_enqueued = 0
        self.latency = Tally()
        self.queue_wait = Tally()
        #: Per-drive fault flags, attached by a
        #: :class:`~repro.fault.injector.FaultInjector`; ``None`` (the
        #: default) keeps the service path fault-free and bit-identical
        #: to the pre-fault-subsystem model.
        self.fault_state = None

    @property
    def geometry(self) -> DiskGeometry:
        """The drive's geometry."""
        return self.drive.geometry

    @property
    def queue_depth(self) -> int:
        """Requests waiting (not counting the one in service)."""
        return len(self._queue)

    @property
    def busy(self) -> bool:
        """True while a request is in service."""
        return self._busy

    def submit(self, request: DiskRequest) -> Waitable:
        """Enqueue a request; returns its completion waitable.

        Raises:
            InvalidRequestError: when the request's span falls outside
                this drive's capacity — validated at submission, not at
                service start, so the failure surfaces synchronously in
                the caller rather than later inside an engine callback.
        """
        if request.end_byte > self.drive.geometry.capacity_bytes:
            raise InvalidRequestError(
                f"request [{request.start_byte}, {request.end_byte}) exceeds "
                f"drive capacity {self.drive.geometry.capacity_bytes}"
            )
        completion = Waitable()
        spans = None
        tracer = self.sim.tracer
        if tracer is not None:
            lane = 10 + self.index  # obs.tracer.drive_lane, inlined
            rspan = tracer.begin(
                f"disk.{request.kind.value}",
                "disk",
                tracer.context,
                lane,
                {"start": request.start_byte, "bytes": request.n_bytes},
            )
            qspan = tracer.begin("disk.queue", "disk", rspan.span_id, lane)
            spans = (rspan, qspan)
        metrics = self.sim.metrics
        if metrics is not None:
            metrics.gauge_max(
                f"disk.queue_depth_max.d{self.index}", len(self._queue) + 1
            )
        self.requests_enqueued += 1
        self._queue.append((request, completion, self.sim.now, spans))
        if not self._busy:
            self._start_next(self.sim)
        return completion

    # -- internals ----------------------------------------------------------

    def _start_next(self, sim: Simulator) -> None:
        if not self._queue:
            self._busy = False
            return
        self._busy = True
        if self._use_elevator and len(self._queue) > 1:
            request, completion, submitted_at, spans = self._pop_elevator()
        else:
            request, completion, submitted_at, spans = self._queue.popleft()
        now = sim.now
        wait_ms = now - submitted_at
        self.queue_wait.add(wait_ms)
        breakdown = self.drive.service(request, now)
        faults = self.fault_state
        retried = False
        if faults is not None:
            breakdown, retried = self._apply_faults(
                faults, request, now, breakdown
            )
        total_ms = breakdown.total_ms
        self.busy_ms += total_ms
        self.bytes_moved += request.n_bytes
        self.requests_served += 1
        self.latency.add(total_ms)
        rspan = None
        if spans is not None:
            rspan, qspan = spans
            self.sim.tracer.end(qspan)
        metrics = sim.metrics
        if metrics is not None:
            metrics.observe("disk.queue_wait_ms", wait_ms)
            metrics.add("disk.seek_ms", breakdown.seek_ms)
            metrics.add("disk.rotation_ms", breakdown.rotation_ms)
            metrics.add("disk.transfer_ms", breakdown.transfer_ms)
            metrics.incr(f"disk.requests.d{self.index}")
            if retried:
                metrics.incr("disk.transient_retries")
        # Direct heap push: service times are strictly positive (every
        # request moves at least one byte), so this is sim.schedule minus
        # the sign/zero-delay checks — one call per request served.
        sim._push_timer(
            now + total_ms,
            self._complete,
            (completion, breakdown, request.n_bytes, rspan),
        )

    def _apply_faults(
        self,
        faults,
        request: DiskRequest,
        now: float,
        breakdown: ServiceBreakdown,
    ) -> tuple[ServiceBreakdown, bool]:
        """Fault-adjusted service time: soft-error retries, slow spindles.

        Whole-disk failures are routed *around* this drive by the owning
        organization (degraded reads), so they never reach here; what
        does reach here is served — including rebuild traffic directed at
        a replacement drive.  Returns the adjusted breakdown plus whether
        a transient retry occurred (for the metrics layer).
        """
        retried = False
        if (
            faults.has_transients
            and request.kind is IoKind.READ
            and faults.sample_transient(now)
        ):
            breakdown = self.drive.retry_service(breakdown)
            retried = True
        factor = faults.slow_factor
        if factor != 1.0:
            breakdown = breakdown.scaled(factor)
        return breakdown, retried

    def _complete(
        self,
        sim: Simulator,
        completion: Waitable,
        breakdown: ServiceBreakdown,
        n_bytes: int,
        rspan=None,
    ) -> None:
        meter = getattr(self.owner, "meter", None)
        if meter is not None:
            meter.record_span(sim.now - breakdown.total_ms, sim.now, n_bytes)
        if rspan is not None:
            tracer = sim.tracer
            tracer.complete(
                "disk.service",
                "disk",
                rspan.span_id,
                rspan.tid,
                sim.now - breakdown.total_ms,
                sim.now,
                {
                    "seek_ms": breakdown.seek_ms,
                    "rotation_ms": breakdown.rotation_ms,
                    "transfer_ms": breakdown.transfer_ms,
                },
            )
            tracer.end(rspan)
        metrics = sim.metrics
        if metrics is not None:
            metrics.observe("disk.service_ms", breakdown.total_ms)
        completion.succeed(sim, breakdown)
        self._start_next(sim)

    def _pop_elevator(self) -> tuple[DiskRequest, Waitable, float, tuple | None]:
        """SCAN: nearest request ahead in the sweep direction, else reverse.

        The selection scan tracks the chosen entry's *index* so it can be
        removed positionally: ``deque.remove`` would re-scan the queue
        comparing whole ``(request, waitable, ...)`` tuples element by
        element against every entry.  Ties keep the earliest-submitted
        entry, exactly as ``min`` over the queue-ordered candidates did.
        """
        head = self.drive.head_cylinder
        cylinder_of = self.drive.cylinder_of
        direction = self._direction
        queue = self._queue
        best_index = -1
        best_dist = 0
        for index, entry in enumerate(queue):
            delta = cylinder_of(entry[0].start_byte) - head
            if delta * direction >= 0:
                dist = delta if delta >= 0 else -delta
                if best_index < 0 or dist < best_dist:
                    best_index, best_dist = index, dist
        if best_index < 0:
            self._direction = -direction
            for index, entry in enumerate(queue):
                delta = cylinder_of(entry[0].start_byte) - head
                dist = delta if delta >= 0 else -delta
                if best_index < 0 or dist < best_dist:
                    best_index, best_dist = index, dist
        chosen = queue[best_index]
        del queue[best_index]
        return chosen

    def utilization(self, elapsed_ms: float) -> float:
        """Fraction of ``elapsed_ms`` the drive spent transferring/seeking."""
        if elapsed_ms <= 0:
            return 0.0
        return self.busy_ms / elapsed_ms

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<QueuedDrive {self.geometry.name} depth={self.queue_depth} "
            f"busy={self._busy}>"
        )
