"""Single-drive timing model with deterministic rotational position.

The drive spins continuously, so at simulated time ``t`` its angular
position is ``(t / rotation) mod 1``.  Every byte has a fixed angular
address derived from its offset within its track plus a per-cylinder skew
equal to the single-track seek, so that a sequential scan that crosses a
cylinder boundary finds the first byte of the next cylinder arriving under
the head exactly as the seek completes (the classic track-skew layout).

Making rotation *positional* rather than sampled is what gives the model
the paper's sensitivity to allocation contiguity: logically sequential
blocks placed contiguously are read at media rate, while the same blocks
scattered by a poor allocator pay a seek plus most of a rotation each.
"""

from __future__ import annotations

from ..errors import InvalidRequestError
from .geometry import DiskGeometry
from .request import DiskRequest, ServiceBreakdown


class DiskDrive:
    """Timing state of one physical drive (head position only).

    Queueing lives in :class:`repro.disk.queue.QueuedDrive`; this class
    answers "if service starts now, how long does this request take and
    where does it leave the head".
    """

    def __init__(self, geometry: DiskGeometry) -> None:
        self.geometry = geometry
        self.head_cylinder = 0
        # Cylinder skew, as a fraction of a revolution.
        self._cylinder_skew = (
            geometry.seek_time(1) / geometry.rotation_ms
        ) % 1.0
        self._head_switch_skew = (
            geometry.head_switch_ms / geometry.rotation_ms
        ) % 1.0

    # -- address decomposition ------------------------------------------------

    def cylinder_of(self, byte_offset: int) -> int:
        """Cylinder holding ``byte_offset`` (cylinder-major layout)."""
        return byte_offset // self.geometry.cylinder_bytes

    def track_of(self, byte_offset: int) -> int:
        """Absolute track index holding ``byte_offset``."""
        return byte_offset // self.geometry.track_bytes

    def start_angle(self, byte_offset: int) -> float:
        """Angular address of a byte, in fractions of a revolution.

        Offset within the track, rotated by the cumulative skew of all
        preceding cylinder crossings and head switches so sequential
        layout is rotationally seamless.
        """
        geometry = self.geometry
        track = byte_offset // geometry.track_bytes
        cylinder = track // geometry.platters
        head = track % geometry.platters
        in_track = (byte_offset % geometry.track_bytes) / geometry.track_bytes
        skew = (
            cylinder * self._cylinder_skew
            + (cylinder * (geometry.platters - 1) + head) * self._head_switch_skew
        )
        return (in_track + skew) % 1.0

    def angle_at(self, time_ms: float) -> float:
        """The drive's angular position at simulated ``time_ms``."""
        return (time_ms / self.geometry.rotation_ms) % 1.0

    # -- timing -------------------------------------------------------------

    def transfer_time(self, start_byte: int, n_bytes: int) -> float:
        """Media transfer time for a contiguous on-disk span.

        One revolution's worth of time per track's worth of bytes, plus a
        single-track seek per cylinder crossing and a head switch per
        track crossing within a cylinder.  O(1) in the span length.
        """
        if start_byte < 0:
            raise InvalidRequestError(f"negative start byte: {start_byte}")
        geometry = self.geometry
        first_track = start_byte // geometry.track_bytes
        last_track = (start_byte + n_bytes - 1) // geometry.track_bytes
        first_cylinder = first_track // geometry.platters
        last_cylinder = last_track // geometry.platters
        track_crossings = last_track - first_track
        cylinder_crossings = last_cylinder - first_cylinder
        head_switches = track_crossings - cylinder_crossings
        return (
            geometry.transfer_ms(n_bytes)
            + cylinder_crossings * geometry.seek_time(1)
            + head_switches * geometry.head_switch_ms
        )

    def service(self, request: DiskRequest, start_time: float) -> ServiceBreakdown:
        """Serve a request beginning at ``start_time``; move the head.

        Returns the seek / rotation / transfer breakdown.  The head is left
        at the cylinder of the last byte transferred.
        """
        geometry = self.geometry
        if request.start_byte < 0:
            raise InvalidRequestError(
                f"negative start byte: {request.start_byte}"
            )
        if request.end_byte > geometry.capacity_bytes:
            raise InvalidRequestError(
                f"request [{request.start_byte}, {request.end_byte}) exceeds "
                f"drive capacity {geometry.capacity_bytes}"
            )
        target_cylinder = self.cylinder_of(request.start_byte)
        seek = geometry.seek_time(abs(target_cylinder - self.head_cylinder))
        arrival = start_time + seek
        target_angle = self.start_angle(request.start_byte)
        rotation_fraction = (target_angle - self.angle_at(arrival)) % 1.0
        if rotation_fraction > 1.0 - 1e-9:
            # Floating point landed an epsilon past the target: a strictly
            # sequential continuation must not pay a phantom revolution.
            rotation_fraction = 0.0
        rotation_delay = rotation_fraction * geometry.rotation_ms
        transfer = self.transfer_time(request.start_byte, request.n_bytes)
        self.head_cylinder = self.cylinder_of(request.end_byte - 1)
        return ServiceBreakdown(seek, rotation_delay, transfer)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<DiskDrive {self.geometry.name} head@{self.head_cylinder}>"
