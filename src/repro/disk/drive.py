"""Single-drive timing model with deterministic rotational position.

The drive spins continuously, so at simulated time ``t`` its angular
position is ``(t / rotation) mod 1``.  Every byte has a fixed angular
address derived from its offset within its track plus a per-cylinder skew
equal to the single-track seek, so that a sequential scan that crosses a
cylinder boundary finds the first byte of the next cylinder arriving under
the head exactly as the seek completes (the classic track-skew layout).

Making rotation *positional* rather than sampled is what gives the model
the paper's sensitivity to allocation contiguity: logically sequential
blocks placed contiguously are read at media rate, while the same blocks
scattered by a poor allocator pay a seek plus most of a rotation each.

:meth:`DiskDrive.service` runs once per simulated disk request — millions
of times per experiment — so the drive caches every geometry-derived
constant at construction (seek table, skew fractions, track/cylinder
sizes) and keeps the arithmetic in :meth:`service`/:meth:`start_angle`
expression-for-expression identical to the naive formulation, which keeps
simulated results bit-identical while avoiding the repeated property
lookups and seek-model recomputation.
"""

from __future__ import annotations

from ..errors import InvalidRequestError
from .geometry import DiskGeometry
from .request import DiskRequest, ServiceBreakdown


class DiskDrive:
    """Timing state of one physical drive (head position only).

    Queueing lives in :class:`repro.disk.queue.QueuedDrive`; this class
    answers "if service starts now, how long does this request take and
    where does it leave the head".
    """

    def __init__(self, geometry: DiskGeometry) -> None:
        self.geometry = geometry
        self.head_cylinder = 0
        #: Optional observability sink called as ``obs_sink(cylinders,
        #: seek_ms)`` once per serviced request.  ``None`` (the default)
        #: keeps :meth:`service` on its unobserved fast path — only the
        #: drive knows the head position, so seek-distance distributions
        #: must be tapped here rather than in the queue layer.
        self.obs_sink = None
        # Cylinder skew, as a fraction of a revolution.
        self._cylinder_skew = (
            geometry.seek_time(1) / geometry.rotation_ms
        ) % 1.0
        self._head_switch_skew = (
            geometry.head_switch_ms / geometry.rotation_ms
        ) % 1.0
        # Hot-path constants (service runs once per simulated request).
        self._track_bytes = geometry.track_bytes
        self._cylinder_bytes = geometry.cylinder_bytes
        self._platters = geometry.platters
        self._rotation_ms = geometry.rotation_ms
        self._head_switch_ms = geometry.head_switch_ms
        self._capacity_bytes = geometry.capacity_bytes
        self._seek_one = geometry.seek_time(1)
        self._seek_table = geometry.seek_table

    # -- address decomposition ------------------------------------------------

    def cylinder_of(self, byte_offset: int) -> int:
        """Cylinder holding ``byte_offset`` (cylinder-major layout)."""
        return byte_offset // self._cylinder_bytes

    def track_of(self, byte_offset: int) -> int:
        """Absolute track index holding ``byte_offset``."""
        return byte_offset // self._track_bytes

    def start_angle(self, byte_offset: int) -> float:
        """Angular address of a byte, in fractions of a revolution.

        Offset within the track, rotated by the cumulative skew of all
        preceding cylinder crossings and head switches so sequential
        layout is rotationally seamless.
        """
        track_bytes = self._track_bytes
        track, in_track_bytes = divmod(byte_offset, track_bytes)
        cylinder, head = divmod(track, self._platters)
        in_track = in_track_bytes / track_bytes
        skew = (
            cylinder * self._cylinder_skew
            + (cylinder * (self._platters - 1) + head) * self._head_switch_skew
        )
        return (in_track + skew) % 1.0

    def angle_at(self, time_ms: float) -> float:
        """The drive's angular position at simulated ``time_ms``."""
        return (time_ms / self._rotation_ms) % 1.0

    # -- timing -------------------------------------------------------------

    def transfer_time(self, start_byte: int, n_bytes: int) -> float:
        """Media transfer time for a contiguous on-disk span.

        One revolution's worth of time per track's worth of bytes, plus a
        single-track seek per cylinder crossing and a head switch per
        track crossing within a cylinder.  O(1) in the span length.

        Raises:
            InvalidRequestError: on a negative start or a non-positive
                length (a zero-length span would place its "last byte"
                before its first and yield negative track crossings).
        """
        if start_byte < 0:
            raise InvalidRequestError(f"negative start byte: {start_byte}")
        if n_bytes <= 0:
            raise InvalidRequestError(f"non-positive transfer length: {n_bytes}")
        track_bytes = self._track_bytes
        platters = self._platters
        first_track = start_byte // track_bytes
        last_track = (start_byte + n_bytes - 1) // track_bytes
        track_crossings = last_track - first_track
        cylinder_crossings = last_track // platters - first_track // platters
        head_switches = track_crossings - cylinder_crossings
        return (
            (n_bytes / track_bytes) * self._rotation_ms
            + cylinder_crossings * self._seek_one
            + head_switches * self._head_switch_ms
        )

    def service(self, request: DiskRequest, start_time: float) -> ServiceBreakdown:
        """Serve a request beginning at ``start_time``; move the head.

        Returns the seek / rotation / transfer breakdown.  The head is left
        at the cylinder of the last byte transferred.
        """
        start_byte = request.start_byte
        end_byte = request.end_byte
        if start_byte < 0:
            raise InvalidRequestError(f"negative start byte: {start_byte}")
        if end_byte > self._capacity_bytes:
            raise InvalidRequestError(
                f"request [{start_byte}, {end_byte}) exceeds "
                f"drive capacity {self._capacity_bytes}"
            )
        cylinder_bytes = self._cylinder_bytes
        target_cylinder = start_byte // cylinder_bytes
        distance = (
            target_cylinder - self.head_cylinder
            if target_cylinder >= self.head_cylinder
            else self.head_cylinder - target_cylinder
        )
        seek = self._seek_table[distance]
        obs = self.obs_sink
        if obs is not None:
            obs(distance, seek)
        arrival = start_time + seek
        target_angle = self.start_angle(start_byte)
        rotation_fraction = (
            target_angle - (arrival / self._rotation_ms) % 1.0
        ) % 1.0
        if rotation_fraction > 1.0 - 1e-9:
            # Floating point landed an epsilon past the target: a strictly
            # sequential continuation must not pay a phantom revolution.
            rotation_fraction = 0.0
        rotation_delay = rotation_fraction * self._rotation_ms
        transfer = self.transfer_time(start_byte, request.n_bytes)
        self.head_cylinder = (end_byte - 1) // cylinder_bytes
        return ServiceBreakdown(seek, rotation_delay, transfer)

    def retry_service(self, breakdown: ServiceBreakdown) -> ServiceBreakdown:
        """Service cost including one soft-error retry (fault injection).

        A failed read is noticed as the transfer completes; the head stays
        put, the target sector comes around again after one full
        revolution, and the media transfer repeats.  No extra seek.
        """
        return ServiceBreakdown(
            breakdown.seek_ms,
            breakdown.rotation_ms + self._rotation_ms,
            breakdown.transfer_ms * 2.0,
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<DiskDrive {self.geometry.name} head@{self.head_cylinder}>"
