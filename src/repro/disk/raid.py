"""Redundant disk organizations: mirroring, RAID-5, parity striping.

§2.1 lists four configurations the disk system supports.  The paper's
results "assume no parity information ... and merely stripe the data", but
the other three organizations are part of the system and drive the
future-work experiment ("the impact of a RAID in the underlying disk
system will reduce the small write performance"):

* :class:`MirroredArray` — every write goes to both copies; reads pick the
  copy with the shorter queue.
* :class:`Raid5Array` — rotating parity (Patterson et al. 1988); small
  writes pay the classic read-modify-write (old data + old parity read,
  then data + parity written), full-stripe writes compute parity for free.
* :class:`ParityStripedArray` — Gray & Walker 1990: data is *not* striped
  (files live on single disks, preserving per-disk locality) but each
  write also updates parity on a rotating partner disk.

Degraded mode (:mod:`repro.fault`): when an injected fault takes a drive
offline, the mirror serves reads from the surviving copy and the RAID-5
reconstructs by reading every surviving drive in the row; writes skip the
dead drive (mirror) or maintain parity so the data is recoverable
(RAID-5).  When a replacement arrives, :meth:`DiskSystem.start_rebuild`
streams the contents back through the ordinary request queues, so rebuild
traffic competes with foreground I/O exactly as it does on real arrays.
A second concurrent failure raises
:class:`~repro.errors.DataUnavailableError` — redundancy is exhausted.
"""

from __future__ import annotations

from ..errors import ConfigurationError, DataUnavailableError
from ..sim.engine import AllOf, Simulator, Waitable
from .array import ConcatArray, DiskSystem, StripedArray
from .geometry import DiskGeometry
from .request import DiskRequest, IoKind


class MirroredArray(DiskSystem):
    """Two identical striped arrays holding the same data.

    Capacity and the allocator-visible address space are one copy's worth.
    """

    def __init__(
        self,
        sim: Simulator,
        geometry: DiskGeometry,
        n_disks: int,
        stripe_unit_bytes: int,
        disk_unit_bytes: int,
    ) -> None:
        super().__init__(sim, disk_unit_bytes)
        self.primary = StripedArray(sim, geometry, n_disks, stripe_unit_bytes, disk_unit_bytes)
        self.secondary = StripedArray(sim, geometry, n_disks, stripe_unit_bytes, disk_unit_bytes)
        self.drives = self.primary.drives + self.secondary.drives
        # Renumber the flat list so every drive gets a distinct trace
        # lane (each StripedArray numbered its own drives from zero).
        for i, drive in enumerate(self.drives):
            drive.index = i
        self._read_toggle = 0

    @property
    def meter(self):
        """Throughput meter, shared by both copies' drives."""
        return self.primary.meter if hasattr(self, "primary") else None

    @meter.setter
    def meter(self, value) -> None:
        if hasattr(self, "primary"):
            self.primary.meter = value
            self.secondary.meter = value

    @property
    def capacity_bytes(self) -> int:
        return self.primary.capacity_bytes

    @property
    def max_bandwidth_bytes_per_ms(self) -> float:
        """Reads can be served by either copy, so both halves count."""
        return (
            self.primary.max_bandwidth_bytes_per_ms
            + self.secondary.max_bandwidth_bytes_per_ms
        )

    def _side_can_serve(self, side: StripedArray, start_unit: int, n_units: int) -> bool:
        """True when every drive the span touches on ``side`` is online."""
        per_drive = side._per_drive_runs(start_unit, n_units)
        return all(
            self._drive_available(side.drives[i])
            for i, runs in enumerate(per_drive)
            if runs
        )

    @staticmethod
    def _partial_transfer(
        side: StripedArray, kind: IoKind, start_unit: int, n_units: int
    ) -> list[Waitable]:
        """Submit a span to ``side``, silently skipping offline drives.

        Used for writes while one copy is degraded: the surviving copy
        takes the write, the dead drive's share is simply lost until the
        rebuild re-copies it from the peer.
        """
        completions: list[Waitable] = []
        per_drive = side._per_drive_runs(start_unit, n_units)
        for drive_index, runs in enumerate(per_drive):
            if not runs or not DiskSystem._drive_available(side.drives[drive_index]):
                continue
            for start_byte, length in runs:
                completions.append(
                    side.drives[drive_index].submit(DiskRequest(kind, start_byte, length))
                )
        return completions

    def transfer(self, kind: IoKind, start_unit: int, n_units: int) -> Waitable:
        self._check_span(start_unit, n_units)
        if kind is IoKind.WRITE:
            if not self.degraded:
                return AllOf(
                    [
                        self.primary.transfer(kind, start_unit, n_units),
                        self.secondary.transfer(kind, start_unit, n_units),
                    ]
                )
            # Degraded write: each copy takes the runs its online drives
            # can absorb.  Both copies dropping the same span would lose
            # data — that is the double-failure case.
            if not (
                self._side_can_serve(self.primary, start_unit, n_units)
                or self._side_can_serve(self.secondary, start_unit, n_units)
            ):
                raise DataUnavailableError(
                    "both mirror copies have offline drives in the written "
                    "span; redundancy is exhausted"
                )
            completions = self._partial_transfer(
                self.primary, kind, start_unit, n_units
            )
            completions.extend(
                self._partial_transfer(self.secondary, kind, start_unit, n_units)
            )
            return AllOf(completions)
        # Reads alternate between copies; with equal geometry this halves
        # each copy's read queue without tracking queue depths per span.
        side = self.primary if self._read_toggle == 0 else self.secondary
        other = self.secondary if self._read_toggle == 0 else self.primary
        self._read_toggle ^= 1
        if not self._side_can_serve(side, start_unit, n_units):
            # Degraded read: fall over to the surviving copy.
            side = other
            metrics = self.sim.metrics
            if metrics is not None:
                metrics.incr("disk.failover_reads")
            if not self._side_can_serve(side, start_unit, n_units):
                raise DataUnavailableError(
                    "both mirror copies have offline drives in the read "
                    "span; redundancy is exhausted"
                )
        return side.transfer(kind, start_unit, n_units)

    def start_rebuild(self, drive_index: int, rows_per_chunk: int):
        """Re-copy a replaced drive from its mirror peer, chunk by chunk.

        Drive ``i`` of the primary copy mirrors drive ``i`` of the
        secondary (indices offset by ``n_disks`` in the flat list), so
        rebuild is a straight disk-to-disk copy through both queues.
        """
        n = len(self.primary.drives)
        peer = self.drives[(drive_index + n) % (2 * n)]
        target = self.drives[drive_index]
        chunk = max(1, rows_per_chunk) * self.primary.stripe_unit_bytes
        per_drive = self.primary._per_drive_bytes

        def rebuild():
            position = 0
            while position < per_drive:
                length = min(chunk, per_drive - position)
                yield peer.submit(DiskRequest(IoKind.READ, position, length))
                yield target.submit(DiskRequest(IoKind.WRITE, position, length))
                if self.fault_injector is not None:
                    self.fault_injector.note_rebuild_bytes(2 * length)
                position += length

        return rebuild()


class Raid5Array(DiskSystem):
    """N+1 drives with rotating parity (left-symmetric).

    The data address space is striped over the N data positions of each
    stripe row; the parity position rotates across drives row by row.
    """

    def __init__(
        self,
        sim: Simulator,
        geometry: DiskGeometry,
        n_disks: int,
        stripe_unit_bytes: int,
        disk_unit_bytes: int,
    ) -> None:
        super().__init__(sim, disk_unit_bytes)
        if n_disks < 3:
            raise ConfigurationError("RAID-5 needs at least 3 drives")
        if stripe_unit_bytes % disk_unit_bytes:
            raise ConfigurationError(
                "stripe unit must be a multiple of the disk unit"
            )
        per_drive = geometry.capacity_bytes
        per_drive -= per_drive % stripe_unit_bytes
        self.geometry = geometry
        self.n_disks = n_disks
        self.stripe_unit_bytes = stripe_unit_bytes
        self._per_drive_bytes = per_drive
        self._rows = per_drive // stripe_unit_bytes
        from .queue import QueuedDrive  # local import avoids a cycle at module load

        self.drives = [
            QueuedDrive(sim, geometry, owner=self, index=i)
            for i in range(n_disks)
        ]

    @property
    def capacity_bytes(self) -> int:
        """Data capacity: one drive per row is parity."""
        return self._per_drive_bytes * (self.n_disks - 1)

    @property
    def max_bandwidth_bytes_per_ms(self) -> float:
        """Sequential reads use the data drives of each row: N-1 of N."""
        full = sum(d.geometry.sustained_bytes_per_ms for d in self.drives)
        return full * (self.n_disks - 1) / self.n_disks

    def locate_unit(self, unit: int) -> tuple[int, int]:
        """Map a data disk-unit address to ``(drive index, drive byte)``."""
        byte = unit * self.disk_unit_bytes
        data_stripe, offset = divmod(byte, self.stripe_unit_bytes)
        row = data_stripe // (self.n_disks - 1)
        position = data_stripe % (self.n_disks - 1)
        parity_drive = row % self.n_disks
        # Data positions count around the row, skipping the parity drive.
        drive = position if position < parity_drive else position + 1
        return drive, row * self.stripe_unit_bytes + offset

    def _parity_drive_of_row(self, row: int) -> int:
        return row % self.n_disks

    def transfer(self, kind: IoKind, start_unit: int, n_units: int) -> Waitable:
        self._check_span(start_unit, n_units)
        su = self.stripe_unit_bytes
        byte = start_unit * self.disk_unit_bytes
        remaining = n_units * self.disk_unit_bytes
        data_per_row = su * (self.n_disks - 1)

        # Plan the whole span before submitting anything, so a span that
        # turns out to be unserviceable (two drives down in one row) fails
        # whole instead of leaving sibling requests queued.
        plan: list[tuple[int, DiskRequest]] = []
        while remaining > 0:
            row = byte // data_per_row
            row_offset = byte % data_per_row
            chunk = min(data_per_row - row_offset, remaining)
            self._plan_in_row(plan, kind, row, row_offset, chunk)
            byte += chunk
            remaining -= chunk
        return AllOf(
            [self.drives[drive].submit(request) for drive, request in plan]
        )

    def _others_in_row(self, excluded: int) -> list[int]:
        """Every drive index except ``excluded``; raises if one is offline.

        Reconstruction needs *all* surviving drives of the row — a second
        offline drive means the data is unrecoverable.
        """
        others: list[int] = []
        for i in range(self.n_disks):
            if i == excluded:
                continue
            if not self._drive_available(self.drives[i]):
                raise DataUnavailableError(
                    f"drives {excluded} and {i} are both offline; RAID-5 "
                    f"survives only a single failure"
                )
            others.append(i)
        return others

    def _plan_in_row(
        self,
        plan: list[tuple[int, DiskRequest]],
        kind: IoKind,
        row: int,
        row_offset: int,
        n_bytes: int,
    ) -> None:
        """Append the drive requests for a span within one stripe row."""
        su = self.stripe_unit_bytes
        parity = self._parity_drive_of_row(row)
        row_byte = row * su
        parity_ok = self._drive_available(self.drives[parity])
        full_row_write = kind is IoKind.WRITE and row_offset == 0 and n_bytes == su * (
            self.n_disks - 1
        )
        offset = row_offset
        remaining = n_bytes
        while remaining > 0:
            position, in_unit = divmod(offset, su)
            drive = position if position < parity else position + 1
            chunk = min(su - in_unit, remaining)
            request_start = row_byte + in_unit
            drive_ok = self._drive_available(self.drives[drive])
            if kind is IoKind.READ:
                if drive_ok:
                    plan.append(
                        (drive, DiskRequest(kind, request_start, chunk))
                    )
                else:
                    # Degraded read: the chunk is the XOR of the same span
                    # on every surviving drive of the row (data + parity),
                    # so reconstruction costs N-1 reads in parallel.
                    metrics = self.sim.metrics
                    if metrics is not None:
                        metrics.incr("disk.reconstructed_reads")
                    for other in self._others_in_row(drive):
                        plan.append(
                            (other, DiskRequest(IoKind.READ, request_start, chunk))
                        )
            elif full_row_write:
                if drive_ok:
                    plan.append(
                        (drive, DiskRequest(kind, request_start, chunk))
                    )
                elif not parity_ok:
                    raise DataUnavailableError(
                        f"drives {drive} and {parity} are both offline; "
                        f"RAID-5 survives only a single failure"
                    )
                # One dead data drive in a full-row write is fine: its
                # chunk is implied by the written parity.
            elif not drive_ok:
                # Degraded small write, data drive dead: new parity is
                # computed from the surviving chunks (reconstruct-write) —
                # read the span from every survivor, then write parity.
                others = self._others_in_row(drive)
                for other in others:
                    if other != parity:
                        plan.append(
                            (other, DiskRequest(IoKind.READ, request_start, chunk))
                        )
                plan.append(
                    (parity, DiskRequest(IoKind.WRITE, request_start, chunk))
                )
            elif not parity_ok:
                # Parity drive dead: the data write proceeds unprotected
                # (parity is recomputed wholesale when the drive rebuilds).
                plan.append(
                    (drive, DiskRequest(IoKind.WRITE, request_start, chunk))
                )
            else:
                # Read-modify-write: read old data, read old parity, write
                # new data, write new parity.  The reads queue first; the
                # writes land behind them on the same drives, which models
                # the two serialized rounds of the classic small-write.
                plan.append(
                    (drive, DiskRequest(IoKind.READ, request_start, chunk))
                )
                plan.append(
                    (parity, DiskRequest(IoKind.READ, request_start, chunk))
                )
                plan.append(
                    (drive, DiskRequest(IoKind.WRITE, request_start, chunk))
                )
                plan.append(
                    (parity, DiskRequest(IoKind.WRITE, request_start, chunk))
                )
            offset += chunk
            remaining -= chunk
        if full_row_write and parity_ok:
            # Parity computed in memory, written alongside the data.
            plan.append((parity, DiskRequest(IoKind.WRITE, row_byte, su)))

    def start_rebuild(self, drive_index: int, rows_per_chunk: int):
        """Rebuild a replaced drive from the survivors, chunk by chunk.

        Each chunk XORs the same byte span of every surviving drive
        (reads issued in parallel, like a degraded read) and writes the
        result to the replacement.  Rebuild traffic flows through the
        ordinary queues, so it competes with foreground I/O.
        """
        target = self.drives[drive_index]
        survivors = [
            d for i, d in enumerate(self.drives) if i != drive_index
        ]
        chunk = max(1, rows_per_chunk) * self.stripe_unit_bytes
        per_drive = self._per_drive_bytes

        def rebuild():
            position = 0
            while position < per_drive:
                length = min(chunk, per_drive - position)
                yield AllOf(
                    [
                        d.submit(DiskRequest(IoKind.READ, position, length))
                        for d in survivors
                    ]
                )
                yield target.submit(DiskRequest(IoKind.WRITE, position, length))
                if self.fault_injector is not None:
                    self.fault_injector.note_rebuild_bytes(
                        (len(survivors) + 1) * length
                    )
                position += length

        return rebuild()


class ParityStripedArray(DiskSystem):
    """Gray & Walker parity striping over a concatenated data layout.

    Data placement is identical to :class:`ConcatArray` (whole files on
    single disks); each write additionally updates a parity extent on the
    next drive over, modelled as a read-modify-write pair there.
    """

    def __init__(
        self,
        sim: Simulator,
        geometry: DiskGeometry,
        n_disks: int,
        disk_unit_bytes: int,
    ) -> None:
        super().__init__(sim, disk_unit_bytes)
        if n_disks < 2:
            raise ConfigurationError("parity striping needs at least 2 drives")
        self._data = ConcatArray(sim, geometry, n_disks, disk_unit_bytes)
        self.n_disks = n_disks
        self.drives = self._data.drives
        # One drive's worth of space across the set is parity.
        self._data_fraction = (n_disks - 1) / n_disks

    @property
    def meter(self):
        """Throughput meter, held by the underlying data layout."""
        return self._data.meter if hasattr(self, "_data") else None

    @meter.setter
    def meter(self, value) -> None:
        if hasattr(self, "_data"):
            self._data.meter = value

    @property
    def capacity_bytes(self) -> int:
        return int(self._data.capacity_bytes * self._data_fraction)

    @property
    def max_bandwidth_bytes_per_ms(self) -> float:
        return (
            sum(d.geometry.sustained_bytes_per_ms for d in self.drives)
            * self._data_fraction
        )

    def transfer(self, kind: IoKind, start_unit: int, n_units: int) -> Waitable:
        self._check_span(start_unit, n_units)
        completions = [self._data.transfer(kind, start_unit, n_units)]
        if kind is IoKind.WRITE:
            # Parity lives on the neighbouring drive at the mirrored offset.
            drive_index, drive_byte = self._data.locate_unit(start_unit)
            parity_drive = (drive_index + 1) % self.n_disks
            per_drive = self._data._per_drive_bytes
            n_bytes = min(n_units * self.disk_unit_bytes, per_drive)
            parity_byte = max(0, min(drive_byte, per_drive - n_bytes))
            completions.append(
                self.drives[parity_drive].submit(
                    DiskRequest(IoKind.READ, parity_byte, n_bytes)
                )
            )
            completions.append(
                self.drives[parity_drive].submit(
                    DiskRequest(IoKind.WRITE, parity_byte, n_bytes)
                )
            )
        return AllOf(completions)
