"""Redundant disk organizations: mirroring, RAID-5, parity striping.

§2.1 lists four configurations the disk system supports.  The paper's
results "assume no parity information ... and merely stripe the data", but
the other three organizations are part of the system and drive the
future-work experiment ("the impact of a RAID in the underlying disk
system will reduce the small write performance"):

* :class:`MirroredArray` — every write goes to both copies; reads pick the
  copy with the shorter queue.
* :class:`Raid5Array` — rotating parity (Patterson et al. 1988); small
  writes pay the classic read-modify-write (old data + old parity read,
  then data + parity written), full-stripe writes compute parity for free.
* :class:`ParityStripedArray` — Gray & Walker 1990: data is *not* striped
  (files live on single disks, preserving per-disk locality) but each
  write also updates parity on a rotating partner disk.
"""

from __future__ import annotations

from ..errors import ConfigurationError
from ..sim.engine import AllOf, Simulator, Waitable
from .array import ConcatArray, DiskSystem, StripedArray
from .geometry import DiskGeometry
from .request import DiskRequest, IoKind


class MirroredArray(DiskSystem):
    """Two identical striped arrays holding the same data.

    Capacity and the allocator-visible address space are one copy's worth.
    """

    def __init__(
        self,
        sim: Simulator,
        geometry: DiskGeometry,
        n_disks: int,
        stripe_unit_bytes: int,
        disk_unit_bytes: int,
    ) -> None:
        super().__init__(sim, disk_unit_bytes)
        self.primary = StripedArray(sim, geometry, n_disks, stripe_unit_bytes, disk_unit_bytes)
        self.secondary = StripedArray(sim, geometry, n_disks, stripe_unit_bytes, disk_unit_bytes)
        self.drives = self.primary.drives + self.secondary.drives
        self._read_toggle = 0

    @property
    def meter(self):
        """Throughput meter, shared by both copies' drives."""
        return self.primary.meter if hasattr(self, "primary") else None

    @meter.setter
    def meter(self, value) -> None:
        if hasattr(self, "primary"):
            self.primary.meter = value
            self.secondary.meter = value

    @property
    def capacity_bytes(self) -> int:
        return self.primary.capacity_bytes

    @property
    def max_bandwidth_bytes_per_ms(self) -> float:
        """Reads can be served by either copy, so both halves count."""
        return (
            self.primary.max_bandwidth_bytes_per_ms
            + self.secondary.max_bandwidth_bytes_per_ms
        )

    def transfer(self, kind: IoKind, start_unit: int, n_units: int) -> Waitable:
        self._check_span(start_unit, n_units)
        if kind is IoKind.WRITE:
            return AllOf(
                [
                    self.primary.transfer(kind, start_unit, n_units),
                    self.secondary.transfer(kind, start_unit, n_units),
                ]
            )
        # Reads alternate between copies; with equal geometry this halves
        # each copy's read queue without tracking queue depths per span.
        side = self.primary if self._read_toggle == 0 else self.secondary
        self._read_toggle ^= 1
        return side.transfer(kind, start_unit, n_units)


class Raid5Array(DiskSystem):
    """N+1 drives with rotating parity (left-symmetric).

    The data address space is striped over the N data positions of each
    stripe row; the parity position rotates across drives row by row.
    """

    def __init__(
        self,
        sim: Simulator,
        geometry: DiskGeometry,
        n_disks: int,
        stripe_unit_bytes: int,
        disk_unit_bytes: int,
    ) -> None:
        super().__init__(sim, disk_unit_bytes)
        if n_disks < 3:
            raise ConfigurationError("RAID-5 needs at least 3 drives")
        if stripe_unit_bytes % disk_unit_bytes:
            raise ConfigurationError(
                "stripe unit must be a multiple of the disk unit"
            )
        per_drive = geometry.capacity_bytes
        per_drive -= per_drive % stripe_unit_bytes
        self.geometry = geometry
        self.n_disks = n_disks
        self.stripe_unit_bytes = stripe_unit_bytes
        self._per_drive_bytes = per_drive
        self._rows = per_drive // stripe_unit_bytes
        from .queue import QueuedDrive  # local import avoids a cycle at module load

        self.drives = [QueuedDrive(sim, geometry, owner=self) for _ in range(n_disks)]

    @property
    def capacity_bytes(self) -> int:
        """Data capacity: one drive per row is parity."""
        return self._per_drive_bytes * (self.n_disks - 1)

    @property
    def max_bandwidth_bytes_per_ms(self) -> float:
        """Sequential reads use the data drives of each row: N-1 of N."""
        full = sum(d.geometry.sustained_bytes_per_ms for d in self.drives)
        return full * (self.n_disks - 1) / self.n_disks

    def locate_unit(self, unit: int) -> tuple[int, int]:
        """Map a data disk-unit address to ``(drive index, drive byte)``."""
        byte = unit * self.disk_unit_bytes
        data_stripe, offset = divmod(byte, self.stripe_unit_bytes)
        row = data_stripe // (self.n_disks - 1)
        position = data_stripe % (self.n_disks - 1)
        parity_drive = row % self.n_disks
        # Data positions count around the row, skipping the parity drive.
        drive = position if position < parity_drive else position + 1
        return drive, row * self.stripe_unit_bytes + offset

    def _parity_drive_of_row(self, row: int) -> int:
        return row % self.n_disks

    def transfer(self, kind: IoKind, start_unit: int, n_units: int) -> Waitable:
        self._check_span(start_unit, n_units)
        su = self.stripe_unit_bytes
        byte = start_unit * self.disk_unit_bytes
        remaining = n_units * self.disk_unit_bytes
        data_per_row = su * (self.n_disks - 1)

        completions: list[Waitable] = []
        while remaining > 0:
            row = byte // data_per_row
            row_offset = byte % data_per_row
            chunk = min(data_per_row - row_offset, remaining)
            completions.extend(self._transfer_in_row(kind, row, row_offset, chunk))
            byte += chunk
            remaining -= chunk
        return AllOf(completions)

    def _transfer_in_row(
        self, kind: IoKind, row: int, row_offset: int, n_bytes: int
    ) -> list[Waitable]:
        """Issue the drive requests for a span within one stripe row."""
        su = self.stripe_unit_bytes
        parity = self._parity_drive_of_row(row)
        row_byte = row * su
        pieces: list[Waitable] = []
        full_row_write = kind is IoKind.WRITE and row_offset == 0 and n_bytes == su * (
            self.n_disks - 1
        )
        offset = row_offset
        remaining = n_bytes
        while remaining > 0:
            position, in_unit = divmod(offset, su)
            drive = position if position < parity else position + 1
            chunk = min(su - in_unit, remaining)
            request_start = row_byte + in_unit
            if kind is IoKind.READ:
                pieces.append(
                    self.drives[drive].submit(DiskRequest(kind, request_start, chunk))
                )
            elif full_row_write:
                pieces.append(
                    self.drives[drive].submit(DiskRequest(kind, request_start, chunk))
                )
            else:
                # Read-modify-write: read old data, read old parity, write
                # new data, write new parity.  The reads queue first; the
                # writes land behind them on the same drives, which models
                # the two serialized rounds of the classic small-write.
                pieces.append(
                    self.drives[drive].submit(
                        DiskRequest(IoKind.READ, request_start, chunk)
                    )
                )
                pieces.append(
                    self.drives[parity].submit(
                        DiskRequest(IoKind.READ, request_start, chunk)
                    )
                )
                pieces.append(
                    self.drives[drive].submit(
                        DiskRequest(IoKind.WRITE, request_start, chunk)
                    )
                )
                pieces.append(
                    self.drives[parity].submit(
                        DiskRequest(IoKind.WRITE, request_start, chunk)
                    )
                )
            offset += chunk
            remaining -= chunk
        if full_row_write:
            # Parity computed in memory, written alongside the data.
            pieces.append(
                self.drives[parity].submit(DiskRequest(IoKind.WRITE, row_byte, su))
            )
        return pieces


class ParityStripedArray(DiskSystem):
    """Gray & Walker parity striping over a concatenated data layout.

    Data placement is identical to :class:`ConcatArray` (whole files on
    single disks); each write additionally updates a parity extent on the
    next drive over, modelled as a read-modify-write pair there.
    """

    def __init__(
        self,
        sim: Simulator,
        geometry: DiskGeometry,
        n_disks: int,
        disk_unit_bytes: int,
    ) -> None:
        super().__init__(sim, disk_unit_bytes)
        if n_disks < 2:
            raise ConfigurationError("parity striping needs at least 2 drives")
        self._data = ConcatArray(sim, geometry, n_disks, disk_unit_bytes)
        self.n_disks = n_disks
        self.drives = self._data.drives
        # One drive's worth of space across the set is parity.
        self._data_fraction = (n_disks - 1) / n_disks

    @property
    def meter(self):
        """Throughput meter, held by the underlying data layout."""
        return self._data.meter if hasattr(self, "_data") else None

    @meter.setter
    def meter(self, value) -> None:
        if hasattr(self, "_data"):
            self._data.meter = value

    @property
    def capacity_bytes(self) -> int:
        return int(self._data.capacity_bytes * self._data_fraction)

    @property
    def max_bandwidth_bytes_per_ms(self) -> float:
        return (
            sum(d.geometry.sustained_bytes_per_ms for d in self.drives)
            * self._data_fraction
        )

    def transfer(self, kind: IoKind, start_unit: int, n_units: int) -> Waitable:
        self._check_span(start_unit, n_units)
        completions = [self._data.transfer(kind, start_unit, n_units)]
        if kind is IoKind.WRITE:
            # Parity lives on the neighbouring drive at the mirrored offset.
            drive_index, drive_byte = self._data.locate_unit(start_unit)
            parity_drive = (drive_index + 1) % self.n_disks
            per_drive = self._data._per_drive_bytes
            n_bytes = min(n_units * self.disk_unit_bytes, per_drive)
            parity_byte = max(0, min(drive_byte, per_drive - n_bytes))
            completions.append(
                self.drives[parity_drive].submit(
                    DiskRequest(IoKind.READ, parity_byte, n_bytes)
                )
            )
            completions.append(
                self.drives[parity_drive].submit(
                    DiskRequest(IoKind.WRITE, parity_byte, n_bytes)
                )
            )
        return AllOf(completions)
