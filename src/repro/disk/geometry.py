"""Disk drive geometry and timing parameters.

Each disk is described, exactly as in the paper's Table 1, by its physical
layout (track size, number of cylinders, number of platters) and its
performance characteristics (rotational speed and the two seek parameters).
The seek model is the paper's: "If ST is the single track seek time and SI
is the incremental seek time, then an N track seek takes ST + N*SI ms."

The module ships :data:`WREN_IV`, the CDC 5-1/4" Wren IV (94171-344) drive
with the simulated values from Table 1.  Eight of them give the paper's
2.8 G system, and the derived sustained bandwidth works out to the paper's
"Maximum Throughput 10.8 M/sec" (it is the cylinder-rate: nine track
revolutions plus one track-to-track seek per cylinder).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from functools import cached_property

from ..errors import ConfigurationError
from ..units import KIB, MIB


@dataclass(frozen=True)
class DiskGeometry:
    """Physical layout and timing of one disk drive.

    Attributes:
        platters: recording surfaces (= heads = tracks per cylinder).
        cylinders: seek positions.
        track_bytes: formatted bytes per track.
        single_track_seek_ms: ST, the one-track seek time.
        incremental_seek_ms: SI, the per-track increment for longer seeks.
        rotation_ms: time for one full revolution.
        head_switch_ms: time to electronically switch heads within a
            cylinder (not in Table 1; defaults to 0, meaning ideal skew).
    """

    platters: int
    cylinders: int
    track_bytes: int
    single_track_seek_ms: float
    incremental_seek_ms: float
    rotation_ms: float
    head_switch_ms: float = 0.0
    name: str = "disk"

    def __post_init__(self) -> None:
        if self.platters <= 0 or self.cylinders <= 0 or self.track_bytes <= 0:
            raise ConfigurationError(f"non-positive geometry dimension in {self}")
        if self.rotation_ms <= 0:
            raise ConfigurationError("rotation time must be positive")
        if self.single_track_seek_ms < 0 or self.incremental_seek_ms < 0:
            raise ConfigurationError("seek times must be non-negative")
        if self.head_switch_ms < 0:
            raise ConfigurationError("head switch time must be non-negative")

    # -- derived layout -----------------------------------------------------

    @property
    def tracks(self) -> int:
        """Total tracks on the drive."""
        return self.platters * self.cylinders

    @property
    def cylinder_bytes(self) -> int:
        """Bytes per cylinder (all tracks under the heads at one position)."""
        return self.platters * self.track_bytes

    @property
    def capacity_bytes(self) -> int:
        """Formatted capacity of the drive."""
        return self.cylinders * self.cylinder_bytes

    # -- timing ---------------------------------------------------------------

    def seek_time(self, cylinder_distance: int) -> float:
        """Seek time for a head movement of ``cylinder_distance`` cylinders.

        Zero distance costs nothing; an N-cylinder move costs
        ``ST + N * SI`` per the paper's model.
        """
        if cylinder_distance < 0:
            raise ConfigurationError(f"negative seek distance: {cylinder_distance}")
        if cylinder_distance == 0:
            return 0.0
        return self.single_track_seek_ms + cylinder_distance * self.incremental_seek_ms

    @cached_property
    def seek_table(self) -> tuple[float, ...]:
        """Seek time for every possible head movement, indexed by distance.

        ``seek_table[d] == seek_time(d)`` for ``0 <= d < cylinders`` (the
        largest movement a drive can make).  :class:`repro.disk.drive.
        DiskDrive` looks seek times up here instead of recomputing the
        linear model per request; the table is built lazily once per
        geometry and costs ``cylinders`` floats.
        """
        return tuple(self.seek_time(d) for d in range(self.cylinders))

    @property
    def full_track_transfer_ms(self) -> float:
        """Time to transfer one full track (one revolution)."""
        return self.rotation_ms

    def transfer_ms(self, n_bytes: int) -> float:
        """Media-rate transfer time for ``n_bytes`` ignoring overheads."""
        return (n_bytes / self.track_bytes) * self.rotation_ms

    @property
    def sustained_bytes_per_ms(self) -> float:
        """Sustained sequential bandwidth of the drive.

        Reading a whole cylinder costs one revolution per track plus head
        switches, then a single-track seek to the next cylinder.  This is
        the denominator of every throughput figure in the study.
        """
        per_cylinder = (
            self.platters * self.rotation_ms
            + (self.platters - 1) * self.head_switch_ms
            + self.seek_time(1)
        )
        return self.cylinder_bytes / per_cylinder

    @property
    def average_rotational_latency_ms(self) -> float:
        """Expected rotational delay for a random request (half a turn)."""
        return self.rotation_ms / 2.0

    # -- scaling ----------------------------------------------------------------

    def scaled(self, factor: float) -> "DiskGeometry":
        """A drive with capacity scaled by ``factor`` (cylinder count).

        Timing characteristics are untouched, so a scaled system preserves
        the paper's per-request behaviour while letting tests fill a small
        disk quickly.  Factor must leave at least one cylinder.
        """
        if factor <= 0:
            raise ConfigurationError(f"scale factor must be positive: {factor}")
        cylinders = max(1, int(round(self.cylinders * factor)))
        return replace(self, cylinders=cylinders, name=f"{self.name}@{factor:g}x")


#: Table 1: CDC 5-1/4" Wren IV (94171-344) drive, simulated values.
WREN_IV = DiskGeometry(
    platters=9,
    cylinders=1600,
    track_bytes=24 * KIB,
    single_track_seek_ms=5.5,
    incremental_seek_ms=0.0320,
    rotation_ms=16.67,
    head_switch_ms=0.0,
    name="CDC Wren IV 94171-344",
)

#: A deliberately tiny drive (same timing) for unit tests: 64 tracks, 1.5 M.
TINY_DISK = DiskGeometry(
    platters=4,
    cylinders=16,
    track_bytes=24 * KIB,
    single_track_seek_ms=5.5,
    incremental_seek_ms=0.0320,
    rotation_ms=16.67,
    head_switch_ms=0.0,
    name="tiny test disk",
)


def paper_array_capacity_bytes(n_disks: int = 8) -> int:
    """Capacity of the paper's configuration: eight Wren IVs, "2.8 G"."""
    return n_disks * WREN_IV.capacity_bytes


# Sanity numbers used in Table 1's bench: 8 Wren IVs are 2.83e9 bytes
# ("2.8 G") and sustain ~10.8 MiB/s, matching the paper's table.
assert paper_array_capacity_bytes() == 2_831_155_200
assert 10.5 < 8 * WREN_IV.sustained_bytes_per_ms * 1000 / MIB < 11.1
