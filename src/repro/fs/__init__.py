"""File-system layer: files, extent maps, and operation execution."""

from .extmap import ExtentMap
from .filesystem import FileSystem, FsFile

__all__ = ["FileSystem", "FsFile", "ExtentMap"]
