"""Logical-offset → disk-address mapping for one file.

A file's allocation is an ordered list of extents; extent ``i`` holds the
units that logically follow extent ``i-1``.  :class:`ExtentMap` mirrors the
allocator's extent list with a cumulative-length index so that locating a
logical offset is a bisect, and converts logical ranges into *linear runs*
(merging physically adjacent extents) ready for the disk system.

The map must be kept in sync by the file system: call :meth:`sync_append`
after the allocator grows the file and :meth:`sync_truncate` after it
shrinks (both are tail operations, matching every policy's behaviour).
"""

from __future__ import annotations

from bisect import bisect_right

from ..alloc.base import AllocFile, Extent
from ..errors import FileSystemError


class ExtentMap:
    """Cumulative index over an :class:`AllocFile`'s extents.

    Lookups remember the extent they last landed in (``_cursor``): the
    workloads overwhelmingly read and write sequentially or repeatedly
    within one extent, so the common locate is one or two comparisons
    against the cached extent's bounds instead of a fresh bisect.  The
    cursor is pure cache — it never changes what any query returns.
    """

    __slots__ = ("_handle", "_cumulative", "_cursor")

    def __init__(self, handle: AllocFile) -> None:
        self._handle = handle
        self._cumulative: list[int] = []
        self._cursor = 0
        total = 0
        for extent in handle.extents:
            total += extent.length
            self._cumulative.append(total)

    @property
    def total_units(self) -> int:
        """Units mapped (== the file's allocated data units)."""
        return self._cumulative[-1] if self._cumulative else 0

    # -- synchronization ------------------------------------------------------

    def sync_append(self, added: list[Extent]) -> None:
        """Record extents the allocator just appended."""
        cumulative = self._cumulative
        total = cumulative[-1] if cumulative else 0
        append = cumulative.append
        for extent in added:
            total += extent.length
            append(total)
        if len(cumulative) != len(self._handle.extents):
            raise FileSystemError("extent map out of sync after append")

    def sync_truncate(self) -> None:
        """Drop index entries for extents the allocator just removed."""
        del self._cumulative[len(self._handle.extents):]
        if len(self._cumulative) != len(self._handle.extents):
            raise FileSystemError("extent map out of sync after truncate")
        if self._cursor >= len(self._cumulative):
            self._cursor = 0

    # -- queries ------------------------------------------------------------

    def locate(self, unit_offset: int) -> tuple[int, int]:
        """Map a logical unit offset to ``(extent index, offset within)``."""
        cumulative = self._cumulative
        if not cumulative or not 0 <= unit_offset < cumulative[-1]:
            raise FileSystemError(
                f"offset {unit_offset} outside mapped {self.total_units} units"
            )
        # Cursor fast path: the last extent hit, then its successor (the
        # sequential advance), before falling back to a full bisect.
        index = self._cursor
        lower = cumulative[index - 1] if index else 0
        if lower <= unit_offset:
            if unit_offset < cumulative[index]:
                return index, unit_offset - lower
            nxt = index + 1
            if nxt < len(cumulative) and unit_offset < cumulative[nxt]:
                self._cursor = nxt
                return nxt, unit_offset - cumulative[index]
        index = bisect_right(cumulative, unit_offset)
        self._cursor = index
        previous_end = cumulative[index - 1] if index else 0
        return index, unit_offset - previous_end

    def runs(self, unit_offset: int, n_units: int) -> list[tuple[int, int]]:
        """Linear disk runs covering a logical range, adjacency-merged.

        Returns ``(linear start unit, length)`` pairs.  Contiguously
        allocated extents merge into one run — this is where contiguous
        allocation turns into fewer, larger disk transfers.
        """
        if n_units <= 0:
            raise FileSystemError(f"non-positive range: {n_units}")
        cumulative = self._cumulative
        total = cumulative[-1] if cumulative else 0
        if unit_offset < 0 or unit_offset + n_units > total:
            raise FileSystemError(
                f"range [{unit_offset}, {unit_offset + n_units}) outside "
                f"mapped {total} units"
            )
        extents = self._handle.extents
        # locate()'s cursor fast path, inlined (runs() is the hottest
        # caller, and the range check above already established
        # ``0 <= unit_offset < total`` — n_units is positive).
        index = self._cursor
        lower = cumulative[index - 1] if index else 0
        within = -1
        if lower <= unit_offset:
            if unit_offset < cumulative[index]:
                within = unit_offset - lower
            else:
                nxt = index + 1
                if nxt < len(cumulative) and unit_offset < cumulative[nxt]:
                    within = unit_offset - cumulative[index]
                    index = nxt
                    self._cursor = nxt
        if within < 0:
            index = bisect_right(cumulative, unit_offset)
            self._cursor = index
            previous_end = cumulative[index - 1] if index else 0
            within = unit_offset - previous_end
        extent = extents[index]
        available = extent.length - within
        if available >= n_units:
            # Whole range inside one extent — the overwhelmingly common
            # case once allocation is even mildly contiguous.
            return [(extent.start + within, n_units)]
        runs: list[tuple[int, int]] = [(extent.start + within, available)]
        remaining = n_units - available
        while remaining > 0:
            index += 1
            extent = extents[index]
            take = extent.length if extent.length < remaining else remaining
            start = extent.start
            last = runs[-1]
            if last[0] + last[1] == start:
                runs[-1] = (last[0], last[1] + take)
            else:
                runs.append((start, take))
            remaining -= take
        return runs
