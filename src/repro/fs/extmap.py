"""Logical-offset → disk-address mapping for one file.

A file's allocation is an ordered list of extents; extent ``i`` holds the
units that logically follow extent ``i-1``.  :class:`ExtentMap` mirrors the
allocator's extent list with a cumulative-length index so that locating a
logical offset is a bisect, and converts logical ranges into *linear runs*
(merging physically adjacent extents) ready for the disk system.

The map must be kept in sync by the file system: call :meth:`sync_append`
after the allocator grows the file and :meth:`sync_truncate` after it
shrinks (both are tail operations, matching every policy's behaviour).
"""

from __future__ import annotations

from bisect import bisect_right

from ..alloc.base import AllocFile, Extent
from ..errors import FileSystemError


class ExtentMap:
    """Cumulative index over an :class:`AllocFile`'s extents."""

    __slots__ = ("_handle", "_cumulative")

    def __init__(self, handle: AllocFile) -> None:
        self._handle = handle
        self._cumulative: list[int] = []
        total = 0
        for extent in handle.extents:
            total += extent.length
            self._cumulative.append(total)

    @property
    def total_units(self) -> int:
        """Units mapped (== the file's allocated data units)."""
        return self._cumulative[-1] if self._cumulative else 0

    # -- synchronization ------------------------------------------------------

    def sync_append(self, added: list[Extent]) -> None:
        """Record extents the allocator just appended."""
        total = self.total_units
        for extent in added:
            total += extent.length
            self._cumulative.append(total)
        if len(self._cumulative) != len(self._handle.extents):
            raise FileSystemError("extent map out of sync after append")

    def sync_truncate(self) -> None:
        """Drop index entries for extents the allocator just removed."""
        del self._cumulative[len(self._handle.extents):]
        if len(self._cumulative) != len(self._handle.extents):
            raise FileSystemError("extent map out of sync after truncate")

    # -- queries ------------------------------------------------------------

    def locate(self, unit_offset: int) -> tuple[int, int]:
        """Map a logical unit offset to ``(extent index, offset within)``."""
        if not 0 <= unit_offset < self.total_units:
            raise FileSystemError(
                f"offset {unit_offset} outside mapped {self.total_units} units"
            )
        index = bisect_right(self._cumulative, unit_offset)
        previous_end = self._cumulative[index - 1] if index else 0
        return index, unit_offset - previous_end

    def runs(self, unit_offset: int, n_units: int) -> list[tuple[int, int]]:
        """Linear disk runs covering a logical range, adjacency-merged.

        Returns ``(linear start unit, length)`` pairs.  Contiguously
        allocated extents merge into one run — this is where contiguous
        allocation turns into fewer, larger disk transfers.
        """
        if n_units <= 0:
            raise FileSystemError(f"non-positive range: {n_units}")
        if unit_offset + n_units > self.total_units:
            raise FileSystemError(
                f"range [{unit_offset}, {unit_offset + n_units}) outside "
                f"mapped {self.total_units} units"
            )
        extents = self._handle.extents
        index, within = self.locate(unit_offset)
        runs: list[tuple[int, int]] = []
        remaining = n_units
        while remaining > 0:
            extent = extents[index]
            take = min(extent.length - within, remaining)
            start = extent.start + within
            if runs and runs[-1][0] + runs[-1][1] == start:
                runs[-1] = (runs[-1][0], runs[-1][1] + take)
            else:
                runs.append((start, take))
            remaining -= take
            index += 1
            within = 0
        return runs
