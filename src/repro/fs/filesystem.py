"""The file system: allocation policy + disk system + files.

:class:`FileSystem` composes an :class:`~repro.alloc.base.Allocator`
(placement) with a :class:`~repro.disk.array.DiskSystem` (timing) and
exposes the operations the workloads perform: create, read, write, extend,
truncate, delete, and the whole-file read/write of the sequential test.

I/O methods are generators meant to run inside simulation processes::

    def user():
        n = yield from fs.read(handle, offset_bytes=0, n_bytes=8192)

Timed data transfers go through the disk system; allocation itself is
instantaneous (the policies' CPU cost is not what the paper measures).
Completed transfer bytes are reported to an optional
:class:`~repro.sim.meters.ThroughputMeter`.
"""

from __future__ import annotations

import itertools

from ..alloc.base import Allocator
from ..alloc.metrics import FragmentationReport, measure_fragmentation
from ..disk.array import DiskSystem
from ..disk.request import IoKind
from ..errors import DiskFullError, FileSystemError
from ..obs.tracer import TID_FS
from ..sim.engine import AllOf, Simulator
from ..sim.meters import ThroughputMeter
from ..units import ceil_div
from .extmap import ExtentMap


class FsFile:
    """An open file: logical length plus the mapping machinery.

    Compares (and hashes) by identity, deliberately: an open file is a
    stateful resource, not a value.  The workload keeps thousands of
    these in population lists, and the former dataclass-generated
    ``__eq__`` deep-compared extent maps and stats dicts across whole
    populations on every ``list.remove`` — the O(n²) churn this layer's
    hot-path rework removed.  ``fs_id`` is unique per file system, so no
    two distinct live files ever compared equal anyway.

    Attributes:
        fs_id: file-system-level id (distinct from the allocator's).
        length_bytes: logical file length.
        cursor_bytes: per-file sequential position (used by burst-style
            workloads that read/write forward through the file).
        tag: free-form label (the workload stores the file-type name).
    """

    __slots__ = (
        "fs_id", "handle", "extmap", "length_bytes", "cursor_bytes",
        "tag", "stats",
    )

    def __init__(
        self,
        fs_id: int,
        handle: object,
        extmap: ExtentMap,
        length_bytes: int = 0,
        cursor_bytes: int = 0,
        tag: str = "",
        stats: dict | None = None,
    ) -> None:
        self.fs_id = fs_id
        self.handle = handle
        self.extmap = extmap
        self.length_bytes = length_bytes
        self.cursor_bytes = cursor_bytes
        self.tag = tag
        self.stats = {} if stats is None else stats

    @property
    def allocated_units(self) -> int:
        """Data units allocated to this file."""
        return self.handle.allocated_units

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"<FsFile {self.fs_id} tag={self.tag!r} "
            f"len={self.length_bytes} alloc={self.handle.allocated_units}u>"
        )


class FileSystem:
    """Files on an allocation policy on a disk system."""

    def __init__(
        self,
        sim: Simulator,
        disk: DiskSystem,
        allocator: Allocator,
        meter: ThroughputMeter | None = None,
        write_behind: bool = False,
    ) -> None:
        """Args:
            write_behind: when True, writes return as soon as their disk
                requests are queued instead of waiting for completion —
                the [STON89] design the paper cites ("read ahead and
                write behind are used to achieve full stripe reads and
                writes").  Reads always wait for their data.
        """
        if allocator.capacity_units > disk.capacity_units:
            raise FileSystemError(
                f"allocator address space {allocator.capacity_units} exceeds "
                f"disk capacity {disk.capacity_units}"
            )
        self.sim = sim
        self.disk = disk
        self.allocator = allocator
        self.write_behind = write_behind
        if meter is not None:
            self.disk.meter = meter
        self.unit_bytes = disk.disk_unit_bytes
        self.files: dict[int, FsFile] = {}
        self._ids = itertools.count(1)
        self.bytes_read = 0
        self.bytes_written = 0

    # -- lifecycle (allocation only; no simulated time) -------------------------

    def create(self, size_hint_bytes: int = 0, tag: str = "") -> FsFile:
        """Create an empty file (descriptor allocated, no data).

        Raises:
            DiskFullError: no space for the descriptor.
        """
        hint_units = ceil_div(size_hint_bytes, self.unit_bytes) if size_hint_bytes else 0
        handle = self.allocator.create(size_hint_units=hint_units)
        fs_file = FsFile(
            fs_id=next(self._ids),
            handle=handle,
            extmap=ExtentMap(handle),
            tag=tag,
        )
        self.files[fs_file.fs_id] = fs_file
        return fs_file

    def allocate_to(
        self, fs_file: FsFile, length_bytes: int, step_bytes: int | None = None
    ) -> None:
        """Instantly grow a file to ``length_bytes`` (initialization phase).

        The paper creates the initial population before the clock starts:
        "Allocation requests are made until the allocation length of the
        file is greater than or equal to this size."  ``step_bytes``
        bounds the size of each individual allocation request — requests
        arrive in workload-sized chunks, which matters to policies whose
        placement depends on request history (the buddy system doubles the
        file on *each* request).  No I/O is simulated.

        Raises:
            DiskFullError: the remaining space cannot hold the file; the
                allocation done so far is kept (the file is just shorter),
                matching the simulator's disk-full logging semantics.
        """
        self._check_live(fs_file)
        needed_units = ceil_div(length_bytes, self.unit_bytes)
        step_units = (
            ceil_div(step_bytes, self.unit_bytes) if step_bytes else None
        )
        extend = self.allocator.extend
        handle = fs_file.handle
        while True:
            # One total_units read per round; _sync_after_extend may
            # replace the whole extent map (remap), so re-read the
            # attribute rather than holding the map across the call.
            total = fs_file.extmap.total_units
            if total >= needed_units:
                break
            missing = needed_units - total
            request = min(missing, step_units) if step_units else missing
            try:
                added = extend(handle, request)
            except DiskFullError:
                covered = fs_file.extmap.total_units * self.unit_bytes
                fs_file.length_bytes = max(
                    fs_file.length_bytes, min(length_bytes, covered)
                )
                raise
            # _sync_after_extend, inlined for the populate/prefill storm
            # of small chunked extends.
            if handle.policy_state.pop("remapped", False):
                fs_file.extmap = ExtentMap(handle)
            else:
                fs_file.extmap.sync_append(added)
        fs_file.length_bytes = max(fs_file.length_bytes, length_bytes)

    def delete(self, fs_file: FsFile) -> None:
        """Delete a file; frees all its space.

        Deallocation is metadata-only (every policy pays the same one-unit
        descriptor, so descriptor I/O cancels out of the comparison and is
        not simulated).
        """
        self._check_live(fs_file)
        self.allocator.delete(fs_file.handle)
        del self.files[fs_file.fs_id]
        fs_file.length_bytes = 0

    def truncate(self, fs_file: FsFile, n_bytes: int) -> int:
        """Shorten the file by ``n_bytes``; frees whole trailing blocks.

        Pure metadata (no timed I/O).  Returns bytes actually removed from
        the logical length.
        """
        self._check_live(fs_file)
        if n_bytes < 0:
            raise FileSystemError(f"negative truncate: {n_bytes}")
        removed = min(n_bytes, fs_file.length_bytes)
        fs_file.length_bytes -= removed
        keep_units = ceil_div(fs_file.length_bytes, self.unit_bytes)
        excess = fs_file.extmap.total_units - keep_units
        if excess > 0:
            self.allocator.truncate(fs_file.handle, excess)
            fs_file.extmap.sync_truncate()
        fs_file.cursor_bytes = min(fs_file.cursor_bytes, fs_file.length_bytes)
        return removed

    def reorganize(self, max_extents: int = 3) -> int:
        """Run the allocator's background reallocator, if it has one.

        Koch's DTSS system runs this "once every day"; the paper's
        measurements exclude it, so it is an extension here.  Policies
        without a ``reallocate`` method return 0.  Extent maps are rebuilt
        to match the reshaped allocations; no I/O is simulated (the
        reallocator runs in the paper's off-peak hours).
        """
        reallocate = getattr(self.allocator, "reallocate", None)
        if reallocate is None:
            return 0
        used = {
            fs_file.handle.file_id: ceil_div(fs_file.length_bytes, self.unit_bytes)
            for fs_file in self.files.values()
        }
        reshaped = reallocate(used, max_extents=max_extents)
        if reshaped:
            for fs_file in self.files.values():
                fs_file.extmap = ExtentMap(fs_file.handle)
        return reshaped

    # -- timed I/O (generators) ----------------------------------------------

    def read(self, fs_file: FsFile, offset_bytes: int, n_bytes: int):
        """Read a byte range (clamped to the file).  Returns bytes read."""
        if fs_file.fs_id not in self.files:
            raise FileSystemError(f"file {fs_file.fs_id} is not open")
        if offset_bytes < 0 or n_bytes < 0:
            raise FileSystemError("negative read offset or size")
        end = min(offset_bytes + n_bytes, fs_file.length_bytes)
        if end <= offset_bytes:
            return 0
        tracer = self.sim.tracer
        if tracer is None:
            # Untraced hot path: the former _byte_range_runs + _transfer
            # pair inlined into one descent (identical requests, identical
            # AllOf join — only the call overhead is gone).
            unit = self.unit_bytes
            first_unit = offset_bytes // unit
            transfer = self.disk.transfer
            yield AllOf([
                transfer(IoKind.READ, start, length)
                for start, length in fs_file.extmap.runs(
                    first_unit, (end - 1) // unit - first_unit + 1
                )
            ])
            actual = end - offset_bytes
            self.bytes_read += actual
            return actual
        span = None
        if tracer is not None:
            span = tracer.begin(
                "fs.read",
                "fs",
                tracer.context,
                TID_FS,
                {"file": fs_file.fs_id, "bytes": end - offset_bytes},
            )
            tracer.context = span.span_id
        try:
            runs = self._byte_range_runs(fs_file, offset_bytes, end - offset_bytes)
            yield from self._transfer(IoKind.READ, runs)
        finally:
            if span is not None:
                tracer.end(span)
                tracer.context = span.parent_id
        actual = end - offset_bytes
        self.bytes_read += actual
        return actual

    def write(self, fs_file: FsFile, offset_bytes: int, n_bytes: int):
        """Write a byte range, growing the file when it extends past EOF.

        Returns bytes written.
        """
        if fs_file.fs_id not in self.files:
            raise FileSystemError(f"file {fs_file.fs_id} is not open")
        if offset_bytes < 0 or n_bytes <= 0:
            raise FileSystemError("bad write offset or size")
        if offset_bytes > fs_file.length_bytes:
            offset_bytes = fs_file.length_bytes  # no holes: append instead
        end = offset_bytes + n_bytes
        tracer = self.sim.tracer
        if tracer is None:
            # Untraced hot path, mirroring read() above.
            if end > fs_file.length_bytes:
                self._grow_to(fs_file, end)
            unit = self.unit_bytes
            first_unit = offset_bytes // unit
            runs = fs_file.extmap.runs(
                first_unit, (end - 1) // unit - first_unit + 1
            )
            if self.write_behind:
                # Queue the disk work and return immediately; the drives
                # drain it in the background (the meter still sees it).
                for start, length in runs:
                    self.disk.transfer(IoKind.WRITE, start, length)
            else:
                transfer = self.disk.transfer
                yield AllOf([
                    transfer(IoKind.WRITE, start, length)
                    for start, length in runs
                ])
            self.bytes_written += n_bytes
            return n_bytes
        span = None
        if tracer is not None:
            span = tracer.begin(
                "fs.write",
                "fs",
                tracer.context,
                TID_FS,
                {"file": fs_file.fs_id, "bytes": n_bytes},
            )
            tracer.context = span.span_id
        try:
            if end > fs_file.length_bytes:
                self._grow_to(fs_file, end)
            runs = self._byte_range_runs(fs_file, offset_bytes, n_bytes)
            if self.write_behind:
                # Queue the disk work and return immediately; the drives
                # drain it in the background (and the meter still sees it).
                # The deferred requests outlive this call, so they trace
                # as roots rather than children of a span that has ended.
                if span is not None:
                    tracer.context = 0
                for start, length in runs:
                    self.disk.transfer(IoKind.WRITE, start, length)
            else:
                yield from self._transfer(IoKind.WRITE, runs)
        finally:
            if span is not None:
                tracer.end(span)
                tracer.context = span.parent_id
        self.bytes_written += n_bytes
        return n_bytes

    def extend(self, fs_file: FsFile, n_bytes: int):
        """Append ``n_bytes`` (allocate + write).  Returns bytes appended."""
        self._check_live(fs_file)
        if n_bytes <= 0:
            raise FileSystemError(f"non-positive extend: {n_bytes}")
        offset = fs_file.length_bytes
        written = yield from self.write(fs_file, offset, n_bytes)
        return written

    def read_whole(self, fs_file: FsFile):
        """Sequential-test read: the entire file in one logical request."""
        result = yield from self.read(fs_file, 0, fs_file.length_bytes)
        return result

    def write_whole(self, fs_file: FsFile):
        """Sequential-test write: overwrite the entire file in place."""
        if fs_file.length_bytes == 0:
            return 0
        result = yield from self.write(fs_file, 0, fs_file.length_bytes)
        return result

    # -- metrics ---------------------------------------------------------------

    def fragmentation(self) -> FragmentationReport:
        """Fragmentation of the current state (§3 definitions)."""
        used: dict[int, float] = {}
        for fs_file in self.files.values():
            handle = fs_file.handle
            used[handle.file_id] = fs_file.length_bytes / self.unit_bytes
        return measure_fragmentation(self.allocator, used)

    @property
    def utilization(self) -> float:
        """Allocated fraction of the address space (governor input)."""
        return self.allocator.utilization

    def live_files(self) -> list[FsFile]:
        """All live files (stable order by id)."""
        return [self.files[k] for k in sorted(self.files)]

    # -- internals ----------------------------------------------------------

    def _check_live(self, fs_file: FsFile) -> None:
        if fs_file.fs_id not in self.files:
            raise FileSystemError(f"file {fs_file.fs_id} is not open")

    def _grow_to(self, fs_file: FsFile, new_length_bytes: int) -> None:
        needed_units = ceil_div(new_length_bytes, self.unit_bytes)
        tracer = self.sim.tracer
        while fs_file.extmap.total_units < needed_units:
            missing = needed_units - fs_file.extmap.total_units
            added = self.allocator.extend(fs_file.handle, missing)
            if tracer is not None:
                # Allocation is instantaneous in the model, so the span
                # is zero-duration — it marks where in the request the
                # allocator ran and how much was asked of it.
                tracer.complete(
                    "alloc.extend",
                    "alloc",
                    tracer.context,
                    TID_FS,
                    self.sim.now,
                    self.sim.now,
                    {"units": missing},
                )
            self._sync_after_extend(fs_file, added)
        fs_file.length_bytes = new_length_bytes

    def _sync_after_extend(self, fs_file: FsFile, added) -> None:
        """Update the extent map; rebuild it when the allocator remapped
        existing extents (FFS fragment-tail promotion)."""
        handle = fs_file.handle
        if handle.policy_state.pop("remapped", False):
            fs_file.extmap = ExtentMap(handle)
        else:
            fs_file.extmap.sync_append(added)

    def _byte_range_runs(
        self, fs_file: FsFile, offset_bytes: int, n_bytes: int
    ) -> list[tuple[int, int]]:
        first_unit = offset_bytes // self.unit_bytes
        last_unit = (offset_bytes + n_bytes - 1) // self.unit_bytes
        return fs_file.extmap.runs(first_unit, last_unit - first_unit + 1)

    @property
    def meter(self):
        """The disk system's throughput meter (drive-level crediting)."""
        return self.disk.meter

    @meter.setter
    def meter(self, value) -> None:
        self.disk.meter = value

    def _transfer(self, kind: IoKind, runs: list[tuple[int, int]]):
        """Issue all runs concurrently and wait for the slowest.

        Throughput crediting happens at the drive level (each completed
        disk request credits ``disk.meter`` over its service span), so a
        whole-file read that spans many measurement intervals contributes
        to each interval it actually occupied.
        """
        waitables = [
            self.disk.transfer(kind, start, length) for start, length in runs
        ]
        if not waitables:
            return None
        tracer = self.sim.tracer
        if tracer is not None:
            # The generator suspends below; the ambient span context is
            # only valid within a single synchronous descent, so reset it
            # before unrelated callbacks run (see repro.obs.tracer).
            tracer.context = 0
        yield AllOf(waitables)
        return None
