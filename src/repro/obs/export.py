"""Trace exporters: Chrome ``trace_event`` JSON and JSONL.

Both formats render a frozen :class:`~repro.obs.tracer.TraceData`.  The
Chrome format loads directly into Perfetto (https://ui.perfetto.dev) or
``chrome://tracing``: spans become complete ("X") events with
microsecond timestamps, lanes become named threads, and fault flips
become instant ("i") events.  JSONL emits one self-describing object per
line — greppable, streamable, and trivially diffable.

Determinism: events are emitted in span-creation order with
``sort_keys`` JSON and fixed separators, and every timestamp is a pure
function of the simulated clock — so a fixed seed yields byte-identical
output, which the golden-trace tests (and CI's ``tools/check_trace.py``
step) rely on.
"""

from __future__ import annotations

import json

from .tracer import TraceData

#: Synthetic process id for the single simulated system.
_PID = 1


def _span_events(trace: TraceData) -> list[dict]:
    events: list[dict] = []
    for tid, name in sorted(trace.lanes.items()):
        events.append(
            {
                "ph": "M",
                "name": "thread_name",
                "pid": _PID,
                "tid": tid,
                "args": {"name": name},
            }
        )
    for span_id, parent_id, name, cat, tid, start_ms, end_ms, args in trace.spans:
        merged = {"id": span_id, "parent": parent_id}
        if args:
            merged.update(args)
        events.append(
            {
                "ph": "X",
                "name": name,
                "cat": cat,
                "pid": _PID,
                "tid": tid,
                "ts": start_ms * 1000.0,
                "dur": (end_ms - start_ms) * 1000.0,
                "args": merged,
            }
        )
    for name, cat, tid, time_ms, args in trace.instants:
        events.append(
            {
                "ph": "i",
                "name": name,
                "cat": cat,
                "pid": _PID,
                "tid": tid,
                "ts": time_ms * 1000.0,
                "s": "g",
                "args": args or {},
            }
        )
    return events


def trace_to_chrome(trace: TraceData) -> str:
    """Render as a Chrome ``trace_event`` JSON document (one object with
    a ``traceEvents`` array, the format Perfetto auto-detects)."""
    document = {
        "traceEvents": _span_events(trace),
        "displayTimeUnit": "ms",
        "otherData": {
            "generator": "repro.obs",
            "frozen_at_ms": trace.frozen_at_ms,
            "span_count": trace.span_count,
        },
    }
    return json.dumps(document, sort_keys=True, separators=(",", ":")) + "\n"


def trace_to_jsonl(trace: TraceData) -> str:
    """Render as JSON Lines: one ``span`` / ``instant`` object per line,
    preceded by a ``meta`` header line."""
    lines = [
        json.dumps(
            {
                "type": "meta",
                "frozen_at_ms": trace.frozen_at_ms,
                "span_count": trace.span_count,
                "lanes": {str(k): v for k, v in sorted(trace.lanes.items())},
            },
            sort_keys=True,
            separators=(",", ":"),
        )
    ]
    for span_id, parent_id, name, cat, tid, start_ms, end_ms, args in trace.spans:
        lines.append(
            json.dumps(
                {
                    "type": "span",
                    "id": span_id,
                    "parent": parent_id,
                    "name": name,
                    "cat": cat,
                    "tid": tid,
                    "start_ms": start_ms,
                    "end_ms": end_ms,
                    "args": args or {},
                },
                sort_keys=True,
                separators=(",", ":"),
            )
        )
    for name, cat, tid, time_ms, args in trace.instants:
        lines.append(
            json.dumps(
                {
                    "type": "instant",
                    "name": name,
                    "cat": cat,
                    "tid": tid,
                    "time_ms": time_ms,
                    "args": args or {},
                },
                sort_keys=True,
                separators=(",", ":"),
            )
        )
    return "\n".join(lines) + "\n"
