"""The metrics registry: counters, gauges, totals, latency histograms.

One :class:`MetricsRegistry` is attached per simulation as
``sim.metrics`` (``None`` disabled, same fast-path discipline as the
tracer).  It *extends* the bookkeeping the simulator already does — the
per-drive :class:`~repro.sim.stats.Tally` objects, the workload driver's
operation counters, the allocator's request counts, the fault injector's
window meters — rather than duplicating it: subsystems record only what
no existing counter captures (latency distributions at fixed bucket
edges, degraded-window transitions, seek distances), and the experiment
layer folds both sources into one snapshot dict at the end of a run
(see ``repro.core.experiments.collect_metrics_snapshot``).

Everything in a snapshot is a plain int/float/list/dict, so snapshots
pickle across worker processes, JSON-serialize for ``--json`` output,
and merge into cached results without custom reducers.
"""

from __future__ import annotations

from ..sim.stats import FixedHistogram

#: Default latency bucket edges (milliseconds): sub-ms to a minute,
#: roughly 2.5x apart — wide enough for one seek or a queue pile-up.
DEFAULT_LATENCY_EDGES = [
    0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0,
    1_000.0, 2_500.0, 5_000.0, 15_000.0, 60_000.0,
]

#: Seek-distance bucket edges (cylinders).
SEEK_DISTANCE_EDGES = [0.0, 1.0, 4.0, 16.0, 64.0, 256.0, 1024.0]


class MetricsRegistry:
    """Named counters, gauges, float totals, and fixed-bucket histograms.

    Instruments are created on first use so subsystems need no
    registration step; names are dotted paths
    (``disk.service_ms``, ``fault.disk-failure``).
    """

    def __init__(self) -> None:
        self.counters: dict[str, int] = {}
        self.gauges: dict[str, float] = {}
        self.totals: dict[str, float] = {}
        self.histograms: dict[str, FixedHistogram] = {}

    # -- recording ---------------------------------------------------------

    def incr(self, name: str, amount: int = 1) -> None:
        """Increment counter ``name``."""
        self.counters[name] = self.counters.get(name, 0) + amount

    def add(self, name: str, value: float) -> None:
        """Accumulate ``value`` into float total ``name``."""
        self.totals[name] = self.totals.get(name, 0.0) + value

    def gauge(self, name: str, value: float) -> None:
        """Set gauge ``name`` to its latest value."""
        self.gauges[name] = value

    def gauge_max(self, name: str, value: float) -> None:
        """Raise gauge ``name`` to ``value`` if it is a new maximum."""
        current = self.gauges.get(name)
        if current is None or value > current:
            self.gauges[name] = value

    def observe(
        self, name: str, value: float, edges: list[float] | None = None
    ) -> None:
        """Record ``value`` in histogram ``name`` (created on first use)."""
        hist = self.histograms.get(name)
        if hist is None:
            hist = self.histograms[name] = FixedHistogram(
                edges if edges is not None else DEFAULT_LATENCY_EDGES
            )
        hist.add(value)

    # -- fault transitions -------------------------------------------------

    def observe_faults(self, sim) -> None:
        """Count degraded-window transitions via the engine's fault hook."""
        sim.on_fault(self._on_fault)

    def _on_fault(self, sim, event) -> None:
        self.incr(f"fault.{event.kind}")

    # -- snapshots ---------------------------------------------------------

    def snapshot(self) -> dict:
        """JSON-safe, picklable snapshot of every instrument, sorted by
        name so two identical runs serialize identically."""
        return {
            "counters": dict(sorted(self.counters.items())),
            "gauges": dict(sorted(self.gauges.items())),
            "totals": dict(sorted(self.totals.items())),
            "histograms": {
                name: hist.as_dict()
                for name, hist in sorted(self.histograms.items())
            },
        }
