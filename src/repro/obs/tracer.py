"""Span tracing for simulated requests.

A *span* is one named interval on the simulated clock — a workload
operation, a file-system call, a disk request's queue wait or platter
service — linked to its parent so a whole logical request reads as one
tree.  The tracer is attached to a simulator as ``sim.tracer``; every
instrumented subsystem guards its recording behind
``tracer = self.sim.tracer`` / ``if tracer is not None``, so the default
(``None``) costs one attribute load and a pointer compare per site and
the event loop itself is untouched.

Span ids are a sequential counter.  Because the simulation is
deterministic (events fire in a fixed ``(time, seq)`` order and every
random draw comes from a named stream), creation order — and therefore
every id, parent link, and timestamp — is a pure function of
``(config, seed)``: the same trace falls out bit-identical in any
process, at any worker count, on either engine variant.

Parent propagation uses an *ambient context* (:attr:`Tracer.context`,
the span id new children adopt).  Generator-based processes interleave,
so the context is only meaningful during a synchronous descent within a
single engine callback: the workload driver sets it when an operation
begins, the file system narrows it to its own span, and the disk layer
reads it at ``submit`` time — all before the first ``yield``.  Code that
suspends resets the context to 0 first (see
``FileSystem._transfer``), so no span started in one callback is ever
adopted as a parent from an unrelated one.

Span *ends* are recorded when the owning generator resumes or a
completion callback fires — both happen at the exact simulated time the
activity finished, so no extra engine events are needed and
``events_executed`` is identical with tracing on or off.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

#: Trace lanes (Chrome "thread ids"): one for the workload drivers, one
#: for file-system calls, and one per drive starting at TID_DRIVE_BASE.
TID_WORKLOAD = 1
TID_FS = 2
TID_DRIVE_BASE = 10


def drive_lane(drive_index: int) -> int:
    """The trace lane (tid) for drive ``drive_index``."""
    return TID_DRIVE_BASE + drive_index


class Span:
    """One open or closed interval on the simulated clock."""

    __slots__ = ("span_id", "parent_id", "name", "cat", "tid", "start_ms",
                 "end_ms", "args")

    def __init__(
        self,
        span_id: int,
        parent_id: int,
        name: str,
        cat: str,
        tid: int,
        start_ms: float,
        end_ms: float | None = None,
        args: dict[str, Any] | None = None,
    ) -> None:
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.cat = cat
        self.tid = tid
        self.start_ms = start_ms
        self.end_ms = end_ms
        self.args = args

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "open" if self.end_ms is None else f"{self.end_ms:g}"
        return f"<Span #{self.span_id} {self.name} {self.start_ms:g}..{state}>"


@dataclass
class TraceData:
    """A frozen, picklable trace: what a finished experiment carries.

    Spans are plain tuples
    ``(span_id, parent_id, name, cat, tid, start_ms, end_ms, args)``
    in creation order; instants are
    ``(name, cat, tid, time_ms, args)``.  Plain tuples keep the payload
    small on the wire (results cross process boundaries via pickle) and
    make byte-comparisons in the determinism tests direct.
    """

    spans: list[tuple] = field(default_factory=list)
    instants: list[tuple] = field(default_factory=list)
    lanes: dict[int, str] = field(default_factory=dict)
    frozen_at_ms: float = 0.0

    @property
    def span_count(self) -> int:
        return len(self.spans)


class Tracer:
    """Records spans against one simulator's clock.

    Args:
        sim: the simulator whose ``now`` timestamps every record.  The
            caller attaches the tracer as ``sim.tracer``; construction
            does not.
    """

    def __init__(self, sim) -> None:
        self.sim = sim
        self.spans: list[Span] = []
        self.instants: list[tuple] = []
        #: Lane names exported as Chrome thread_name metadata.
        self.lanes: dict[int, str] = {
            TID_WORKLOAD: "workload",
            TID_FS: "filesystem",
        }
        #: Ambient parent span id for new children (0 = root).  Only
        #: meaningful during a synchronous descent — see the module
        #: docstring for the discipline.
        self.context = 0
        self._next_id = 1

    # -- recording ---------------------------------------------------------

    def begin(
        self,
        name: str,
        cat: str,
        parent_id: int,
        tid: int,
        args: dict[str, Any] | None = None,
    ) -> Span:
        """Open a span starting now; close it later with :meth:`end`."""
        span = Span(
            self._next_id, parent_id, name, cat, tid, self.sim.now, None, args
        )
        self._next_id += 1
        self.spans.append(span)
        return span

    def end(self, span: Span) -> None:
        """Close ``span`` at the current simulated time."""
        span.end_ms = self.sim.now

    def complete(
        self,
        name: str,
        cat: str,
        parent_id: int,
        tid: int,
        start_ms: float,
        end_ms: float,
        args: dict[str, Any] | None = None,
    ) -> Span:
        """Record a span whose interval is already known (both ends past)."""
        span = Span(
            self._next_id, parent_id, name, cat, tid, start_ms, end_ms, args
        )
        self._next_id += 1
        self.spans.append(span)
        return span

    def instant(
        self, name: str, cat: str, tid: int, args: dict[str, Any] | None = None
    ) -> None:
        """Record a zero-duration marker (e.g. a fault-injection flip)."""
        self.instants.append((name, cat, tid, self.sim.now, args))

    def name_lane(self, tid: int, name: str) -> None:
        """Label a trace lane (rendered as a thread name in Perfetto)."""
        self.lanes[tid] = name

    # -- fault instants ----------------------------------------------------

    def observe_faults(self) -> None:
        """Subscribe to the simulator's fault hook: every injected state
        flip becomes an instant event on the affected drive's lane."""
        self.sim.on_fault(self._on_fault)

    def _on_fault(self, sim, event) -> None:
        self.instants.append(
            (event.kind, "fault", drive_lane(event.drive), event.time_ms, None)
        )

    # -- freezing ----------------------------------------------------------

    def freeze(self) -> TraceData:
        """Snapshot into a picklable :class:`TraceData`.

        Spans still open (requests in flight when the run hit its time
        cap) are closed at the current simulated time and flagged with
        ``{"truncated": True}`` so the exported trace never contains an
        interval extending past the data that produced it.
        """
        now = self.sim.now
        spans: list[tuple] = []
        for s in self.spans:
            end = s.end_ms
            args = s.args
            if end is None:
                end = max(s.start_ms, now)
                args = dict(args) if args else {}
                args["truncated"] = True
            spans.append(
                (s.span_id, s.parent_id, s.name, s.cat, s.tid, s.start_ms,
                 end, args)
            )
        return TraceData(
            spans=spans,
            instants=list(self.instants),
            lanes=dict(self.lanes),
            frozen_at_ms=now,
        )
