"""Live sweep telemetry: progress frames from running experiments.

A *frame* is a small plain dict describing where a running experiment
is — stage name, simulated time, cap, engine event count.  Experiments
emit frames through a module-level emitter hook:

* :func:`emit` is a no-op unless an emitter is installed, so emitting
  sites cost one module-global load and a pointer compare when nobody is
  listening (the same disabled-fast-path discipline as the tracer).
* Pool workers install an emitter that writes ``("progress", frame)``
  onto their existing supervision pipe; the supervisor routes frames to
  the caller's telemetry callback without disturbing the result
  protocol.
* The inline (``jobs=1``) runner installs an emitter that calls the
  callback directly.

Frames piggyback on work the simulation already does — the phase
monitor's stabilization ticks, the allocation test's churn loop — so
telemetry schedules no additional simulator events and cannot perturb
results.  :class:`SweepTelemetry` renders the frames as a throttled
stderr status line (stdout stays byte-identical with telemetry on or
off).
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable, TextIO

#: One emitter slot *per thread*: the experiment service runs multiple
#: in-process experiments concurrently on different threads, and a
#: process-global slot would let one run's install/uninstall clobber a
#: sibling's emitter mid-flight.  Workers and the inline runner install
#: and emit on the same thread, so they observe the exact old semantics.
_slots = threading.local()


def install_emitter(fn: Callable[[dict], None]) -> None:
    """Route this thread's subsequent :func:`emit` calls to ``fn`` (one
    emitter at a time; installing replaces)."""
    _slots.emitter = fn


def uninstall_emitter() -> None:
    """Disable :func:`emit` again (safe to call when none installed)."""
    _slots.emitter = None


def telemetry_enabled() -> bool:
    """True when an emitter is installed (lets hot loops skip building
    frame dicts entirely)."""
    return getattr(_slots, "emitter", None) is not None


def emit(frame: dict) -> None:
    """Deliver ``frame`` to the installed emitter, if any.

    Emitter exceptions (e.g. a supervision pipe whose parent died) are
    deliberately not caught here: a worker that cannot report is a
    worker the supervisor should reap.
    """
    fn = getattr(_slots, "emitter", None)
    if fn is not None:
        fn(frame)


def progress_frame(
    stage: str,
    sim_ms: float,
    cap_ms: float | None = None,
    events: int | None = None,
    **extra: Any,
) -> dict:
    """Build a standard progress frame (plain dict: picklable, small)."""
    frame: dict[str, Any] = {"stage": stage, "sim_ms": sim_ms}
    if cap_ms is not None:
        frame["cap_ms"] = cap_ms
    if events is not None:
        frame["events"] = events
    frame.update(extra)
    return frame


class SweepTelemetry:
    """Render per-task progress frames as a live stderr status line.

    Wire :meth:`on_frame` as the runner's telemetry callback and call
    :meth:`note_point_done` from its progress callback; the ETA combines
    completed points with the simulated-time fraction of every in-flight
    point.  Rendering is wall-clock throttled (``min_interval_s``) so a
    chatty sweep cannot flood the terminal; pass 0 in tests for
    deterministic line-per-frame output.
    """

    def __init__(
        self,
        stream: TextIO,
        min_interval_s: float = 1.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.stream = stream
        self.min_interval_s = min_interval_s
        self._clock = clock
        self._started = clock()
        self._last_render = -float("inf")
        self._latest: dict[int, dict] = {}
        self.completed = 0
        self.total = 0
        self.frames_seen = 0

    # -- inputs ------------------------------------------------------------

    def on_frame(self, index: int, frame: dict) -> None:
        """Telemetry callback: record the latest frame for one task."""
        self.frames_seen += 1
        self._latest[index] = frame
        self._maybe_render()

    def note_point_done(
        self, completed: int, total: int, index: int | None = None
    ) -> None:
        """Progress-callback hook: a sweep point finished."""
        self.completed = completed
        self.total = total
        if index is not None:
            self._latest.pop(index, None)

    # -- rendering ---------------------------------------------------------

    def _fraction(self, frame: dict) -> float | None:
        cap = frame.get("cap_ms")
        if not cap:
            return None
        return min(1.0, frame.get("sim_ms", 0.0) / cap)

    def eta_seconds(self) -> float | None:
        """Wall-clock estimate of time remaining, or ``None`` early on."""
        if not self.total:
            return None
        progress = float(self.completed)
        for frame in self._latest.values():
            fraction = self._fraction(frame)
            if fraction is not None:
                progress += fraction
        progress = min(progress, float(self.total))
        if progress <= 0:
            return None
        elapsed = self._clock() - self._started
        if elapsed <= 0:
            return None
        return elapsed * (self.total - progress) / progress

    def render_line(self) -> str:
        """The current status line (exposed for tests)."""
        parts = []
        if self.total:
            parts.append(f"{self.completed}/{self.total} done")
            eta = self.eta_seconds()
            if eta is not None:
                parts.append(f"eta ~{eta:.0f}s")
        for index in sorted(self._latest):
            frame = self._latest[index]
            stage = frame.get("stage", "?")
            piece = f"t{index} {stage}"
            fraction = self._fraction(frame)
            if fraction is not None:
                piece += f" {100.0 * fraction:.0f}%"
            elif "sim_ms" in frame:
                piece += f" {frame['sim_ms'] / 1000.0:.1f}s sim"
            if "operations" in frame:
                piece += f" {frame['operations']:,d} ops"
            parts.append(piece)
        return "telemetry: " + " | ".join(parts) if parts else "telemetry: idle"

    def _maybe_render(self) -> None:
        now = self._clock()
        if now - self._last_render < self.min_interval_s:
            return
        self._last_render = now
        print(self.render_line(), file=self.stream)
