"""Observability: span tracing, metrics, exporters, live sweep telemetry.

The paper's results are aggregates; this package makes individual
requests visible.  Four pieces, wired through every simulator layer:

* :mod:`repro.obs.tracer` — parent/child spans following each logical
  request from workload driver through file system, allocator, and disk
  queue to drive service.  Attached as ``sim.tracer``; ``None`` (the
  default) is the zero-overhead disabled path.
* :mod:`repro.obs.metrics` — a registry of counters, gauges, totals, and
  fixed-bucket latency histograms recorded at subsystem boundaries.
  Attached as ``sim.metrics``.
* :mod:`repro.obs.export` — Chrome ``trace_event`` JSON (loadable in
  Perfetto / ``about:tracing``) and JSONL exporters, byte-deterministic
  for a fixed seed.
* :mod:`repro.obs.telemetry` — periodic progress frames streamed from
  sweep workers over their supervision pipes, rendered live on stderr.

Determinism: span ids are a sequential counter over a deterministic
simulation, all timestamps come from the simulated clock, and exporters
emit canonical JSON — so a fixed ``(config, seed)`` produces
bit-identical traces across runs, worker counts, and engine variants
(the test suite asserts all three).
"""

from .export import trace_to_chrome, trace_to_jsonl
from .metrics import DEFAULT_LATENCY_EDGES, MetricsRegistry
from .telemetry import (
    SweepTelemetry,
    emit,
    install_emitter,
    telemetry_enabled,
    uninstall_emitter,
)
from .tracer import (
    TID_FS,
    TID_WORKLOAD,
    Span,
    TraceData,
    Tracer,
    drive_lane,
)

__all__ = [
    "DEFAULT_LATENCY_EDGES",
    "MetricsRegistry",
    "Span",
    "SweepTelemetry",
    "TID_FS",
    "TID_WORKLOAD",
    "TraceData",
    "Tracer",
    "drive_lane",
    "emit",
    "install_emitter",
    "telemetry_enabled",
    "trace_to_chrome",
    "trace_to_jsonl",
    "uninstall_emitter",
]
