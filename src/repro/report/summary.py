"""Experiment dossiers: one readable report per run.

The tables and charts in :mod:`repro.report.tables` / ``figures`` render
single results; this module composes them into the summaries the examples
and CLI print — a performance run with its phase numbers, operation mix,
and per-operation latency, or a multi-policy comparison.
"""

from __future__ import annotations

from ..core.experiments import PerformanceResult
from .figures import GroupedBarChart
from .tables import Table


def render_performance_summary(result: PerformanceResult) -> str:
    """A full dossier for one performance run."""
    header = Table(
        ["Phase", "% of max", "Stabilized", "Simulated (s)", "Bytes moved (MiB)"],
        title=f"{result.policy_label} / {result.workload}",
    )
    for name, phase in (
        ("application", result.application),
        ("sequential", result.sequential),
    ):
        header.add_row(
            [
                name,
                f"{phase.percent:.1f}%",
                "yes" if phase.stabilized else "no",
                f"{phase.simulated_ms / 1000:.0f}",
                f"{phase.bytes_moved / 2**20:.1f}",
            ]
        )

    operations = Table(
        ["Operation", "Count", "Mean latency (ms)"],
        title="Operation mix",
    )
    for op in sorted(result.operation_counts):
        operations.add_row(
            [
                op,
                result.operation_counts[op],
                f"{result.operation_latency_ms.get(op, 0.0):.1f}",
            ]
        )

    footer = [
        f"final utilization : {100 * result.final_utilization:.1f}%",
        f"disk-full events  : {result.disk_full_events}",
        f"governor converts : {result.governor_conversions}",
    ]
    return "\n\n".join(
        [header.render(), operations.render(), "\n".join(footer)]
    )


def render_policy_comparison(
    results: list[PerformanceResult], title: str = "Policy comparison"
) -> str:
    """Side-by-side bars for a list of performance results."""
    sequential = GroupedBarChart(
        f"{title} — sequential (% of max)", value_format="{:.1f}%", maximum=100.0
    )
    application = GroupedBarChart(
        f"{title} — application (% of max)", value_format="{:.1f}%", maximum=100.0
    )
    for result in results:
        sequential.add(result.workload, result.policy_label,
                       result.sequential.percent)
        application.add(result.workload, result.policy_label,
                        result.application.percent)
    return sequential.render() + "\n\n" + application.render()
