"""Experiment dossiers: one readable report per run.

The tables and charts in :mod:`repro.report.tables` / ``figures`` render
single results; this module composes them into the summaries the examples
and CLI print — a performance run with its phase numbers, operation mix,
and per-operation latency, or a multi-policy comparison.
"""

from __future__ import annotations

from ..core.experiments import PerformanceResult
from ..fault.injector import FaultSummary
from .figures import GroupedBarChart
from .tables import Table


def render_fault_summary(summary: FaultSummary) -> str:
    """Degraded-mode dossier for a fault-injected run.

    Reports foreground throughput in each mode (rebuild traffic is
    excluded from the byte counts) and the paper-style normalization:
    degraded-mode throughput as a percentage of healthy-mode throughput.
    """
    table = Table(
        ["Metric", "Healthy", "Degraded"],
        title="Fault injection: degraded-mode performance",
    )
    table.add_row(
        [
            "Time (s)",
            f"{summary.healthy_ms / 1000:.1f}",
            f"{summary.degraded_ms / 1000:.1f}",
        ]
    )
    table.add_row(
        [
            "Foreground data (MiB)",
            f"{summary.healthy_bytes / 2**20:.1f}",
            f"{summary.degraded_bytes / 2**20:.1f}",
        ]
    )
    table.add_row(
        [
            "Throughput (MiB/s)",
            f"{summary.healthy_throughput * 1000 / 2**20:.2f}",
            f"{summary.degraded_throughput * 1000 / 2**20:.2f}",
        ]
    )
    percent = summary.degraded_percent_of_healthy
    footer = [
        "degraded throughput : "
        + (
            f"{percent:.1f}% of healthy"
            if percent is not None
            else "n/a (no healthy window)"
        ),
        f"disk failures       : {summary.disk_failures}",
        f"rebuilds completed  : {summary.rebuilds_completed}",
        f"rebuild data (MiB)  : {summary.rebuild_bytes / 2**20:.1f}",
        f"transient errors    : {summary.transient_errors}",
        f"slowdown windows    : {summary.slowdowns}",
    ]
    return table.render() + "\n\n" + "\n".join(footer)


def render_metrics_snapshot(metrics: dict) -> str:
    """Dossier section for a collected metrics snapshot.

    Scalars (counters, gauges, float totals) share one table; latency
    histograms get a second with their summary statistics.  Bucket
    contents stay in the JSON/trace outputs — here they would drown the
    dossier.
    """
    scalars = Table(["Metric", "Value"], title="Metrics")
    for name, value in metrics.get("counters", {}).items():
        scalars.add_row([name, value])
    for name, value in metrics.get("gauges", {}).items():
        scalars.add_row([name, f"{value:g}"])
    for name, value in metrics.get("totals", {}).items():
        scalars.add_row([name, f"{value:.1f}"])
    sections = [scalars.render()]
    histograms = metrics.get("histograms", {})
    if histograms:
        table = Table(
            ["Distribution", "Count", "Mean", "Min", "Max"],
            title="Latency distributions",
        )

        def cell(value: float | None) -> str:
            return "n/a" if value is None else f"{value:.2f}"

        for name, hist in histograms.items():
            table.add_row(
                [
                    name,
                    hist.get("count", 0),
                    cell(hist.get("mean") if hist.get("count") else None),
                    cell(hist.get("min")),
                    cell(hist.get("max")),
                ]
            )
        sections.append(table.render())
    return "\n\n".join(sections)


def render_performance_summary(result: PerformanceResult) -> str:
    """A full dossier for one performance run."""
    header = Table(
        ["Phase", "% of max", "Stabilized", "Simulated (s)", "Bytes moved (MiB)"],
        title=f"{result.policy_label} / {result.workload}",
    )
    for name, phase in (
        ("application", result.application),
        ("sequential", result.sequential),
    ):
        header.add_row(
            [
                name,
                f"{phase.percent:.1f}%",
                "yes" if phase.stabilized else "no",
                f"{phase.simulated_ms / 1000:.0f}",
                f"{phase.bytes_moved / 2**20:.1f}",
            ]
        )

    operations = Table(
        ["Operation", "Count", "Mean latency (ms)"],
        title="Operation mix",
    )
    for op in sorted(result.operation_counts):
        operations.add_row(
            [
                op,
                result.operation_counts[op],
                f"{result.operation_latency_ms.get(op, 0.0):.1f}",
            ]
        )

    footer = [
        f"final utilization : {100 * result.final_utilization:.1f}%",
        f"disk-full events  : {result.disk_full_events}",
        f"governor converts : {result.governor_conversions}",
    ]
    if result.io_failures:
        footer.append(f"I/O failures      : {result.io_failures}")
    sections = [header.render(), operations.render(), "\n".join(footer)]
    if result.faults is not None:
        sections.append(render_fault_summary(result.faults))
    if result.metrics is not None:
        sections.append(render_metrics_snapshot(result.metrics))
    return "\n\n".join(sections)


def render_policy_comparison(
    results: list[PerformanceResult], title: str = "Policy comparison"
) -> str:
    """Side-by-side bars for a list of performance results."""
    sequential = GroupedBarChart(
        f"{title} — sequential (% of max)", value_format="{:.1f}%", maximum=100.0
    )
    application = GroupedBarChart(
        f"{title} — application (% of max)", value_format="{:.1f}%", maximum=100.0
    )
    for result in results:
        sequential.add(result.workload, result.policy_label,
                       result.sequential.percent)
        application.add(result.workload, result.policy_label,
                        result.application.percent)
    return sequential.render() + "\n\n" + application.render()
