"""Experiment dossiers: one readable report per run.

The tables and charts in :mod:`repro.report.tables` / ``figures`` render
single results; this module composes them into the summaries the examples
and CLI print — a performance run with its phase numbers, operation mix,
and per-operation latency, or a multi-policy comparison.
"""

from __future__ import annotations

from ..core.experiments import PerformanceResult
from ..fault.injector import FaultSummary
from .figures import GroupedBarChart
from .tables import Table


def render_fault_summary(summary: FaultSummary) -> str:
    """Degraded-mode dossier for a fault-injected run.

    Reports foreground throughput in each mode (rebuild traffic is
    excluded from the byte counts) and the paper-style normalization:
    degraded-mode throughput as a percentage of healthy-mode throughput.
    """
    table = Table(
        ["Metric", "Healthy", "Degraded"],
        title="Fault injection: degraded-mode performance",
    )
    table.add_row(
        [
            "Time (s)",
            f"{summary.healthy_ms / 1000:.1f}",
            f"{summary.degraded_ms / 1000:.1f}",
        ]
    )
    table.add_row(
        [
            "Foreground data (MiB)",
            f"{summary.healthy_bytes / 2**20:.1f}",
            f"{summary.degraded_bytes / 2**20:.1f}",
        ]
    )
    table.add_row(
        [
            "Throughput (MiB/s)",
            f"{summary.healthy_throughput * 1000 / 2**20:.2f}",
            f"{summary.degraded_throughput * 1000 / 2**20:.2f}",
        ]
    )
    footer = [
        f"degraded throughput : {summary.degraded_percent_of_healthy:.1f}% of healthy",
        f"disk failures       : {summary.disk_failures}",
        f"rebuilds completed  : {summary.rebuilds_completed}",
        f"rebuild data (MiB)  : {summary.rebuild_bytes / 2**20:.1f}",
        f"transient errors    : {summary.transient_errors}",
        f"slowdown windows    : {summary.slowdowns}",
    ]
    return table.render() + "\n\n" + "\n".join(footer)


def render_performance_summary(result: PerformanceResult) -> str:
    """A full dossier for one performance run."""
    header = Table(
        ["Phase", "% of max", "Stabilized", "Simulated (s)", "Bytes moved (MiB)"],
        title=f"{result.policy_label} / {result.workload}",
    )
    for name, phase in (
        ("application", result.application),
        ("sequential", result.sequential),
    ):
        header.add_row(
            [
                name,
                f"{phase.percent:.1f}%",
                "yes" if phase.stabilized else "no",
                f"{phase.simulated_ms / 1000:.0f}",
                f"{phase.bytes_moved / 2**20:.1f}",
            ]
        )

    operations = Table(
        ["Operation", "Count", "Mean latency (ms)"],
        title="Operation mix",
    )
    for op in sorted(result.operation_counts):
        operations.add_row(
            [
                op,
                result.operation_counts[op],
                f"{result.operation_latency_ms.get(op, 0.0):.1f}",
            ]
        )

    footer = [
        f"final utilization : {100 * result.final_utilization:.1f}%",
        f"disk-full events  : {result.disk_full_events}",
        f"governor converts : {result.governor_conversions}",
    ]
    if result.io_failures:
        footer.append(f"I/O failures      : {result.io_failures}")
    sections = [header.render(), operations.render(), "\n".join(footer)]
    if result.faults is not None:
        sections.append(render_fault_summary(result.faults))
    return "\n\n".join(sections)


def render_policy_comparison(
    results: list[PerformanceResult], title: str = "Policy comparison"
) -> str:
    """Side-by-side bars for a list of performance results."""
    sequential = GroupedBarChart(
        f"{title} — sequential (% of max)", value_format="{:.1f}%", maximum=100.0
    )
    application = GroupedBarChart(
        f"{title} — application (% of max)", value_format="{:.1f}%", maximum=100.0
    )
    for result in results:
        sequential.add(result.workload, result.policy_label,
                       result.sequential.percent)
        application.add(result.workload, result.policy_label,
                        result.application.percent)
    return sequential.render() + "\n\n" + application.render()
