"""ASCII table rendering for experiment reports.

The benchmark harness regenerates each of the paper's tables and figures
as text; this module is the shared formatter.  No styling dependencies —
plain monospace output that diffs cleanly run to run.
"""

from __future__ import annotations

from ..errors import ConfigurationError


class Table:
    """A simple aligned text table.

    >>> t = Table(["Workload", "Internal", "External"], title="Results")
    >>> t.add_row(["SC", "43.1%", "13.4%"])
    >>> print(t.render())  # doctest: +ELLIPSIS
    Results
    ...
    """

    def __init__(self, headers: list[str], title: str = "") -> None:
        if not headers:
            raise ConfigurationError("table needs at least one column")
        self.headers = [str(h) for h in headers]
        self.title = title
        self.rows: list[list[str]] = []

    def add_row(self, cells: list[object]) -> None:
        """Append a row; cell count must match the header."""
        if len(cells) != len(self.headers):
            raise ConfigurationError(
                f"row has {len(cells)} cells, table has {len(self.headers)} columns"
            )
        self.rows.append([_format_cell(c) for c in cells])

    def render(self) -> str:
        """Render the table with a header rule and aligned columns."""
        widths = [len(h) for h in self.headers]
        for row in self.rows:
            for index, cell in enumerate(row):
                widths[index] = max(widths[index], len(cell))
        lines = []
        if self.title:
            lines.append(self.title)
        header = "  ".join(h.ljust(w) for h, w in zip(self.headers, widths))
        lines.append(header)
        lines.append("  ".join("-" * w for w in widths))
        for row in self.rows:
            lines.append(
                "  ".join(cell.rjust(w) for cell, w in zip(row, widths))
            )
        return "\n".join(lines)


def _format_cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.1f}"
    return str(value)


def percent(value: float, decimals: int = 1) -> str:
    """Format a fraction as a percentage string (paper units)."""
    return f"{100.0 * value:.{decimals}f}%"
