"""Report rendering: tables and text bar charts for the benchmark harness."""

from .figures import BAR_WIDTH, GroupedBarChart, render_bar
from .summary import render_performance_summary, render_policy_comparison
from .tables import Table, percent

__all__ = [
    "Table",
    "percent",
    "GroupedBarChart",
    "render_bar",
    "BAR_WIDTH",
    "render_performance_summary",
    "render_policy_comparison",
]
