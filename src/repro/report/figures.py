"""Text bar charts: the harness's rendering of the paper's figures.

Each of Figures 1, 2, 4, 5, and 6 is a grouped bar chart; this module
renders the same series as labelled unicode bars so a terminal run of the
benchmark suite visually reproduces the figure shapes.
"""

from __future__ import annotations

from ..errors import ConfigurationError

#: Width of the bar area in characters.
BAR_WIDTH = 40


def render_bar(value: float, maximum: float, width: int = BAR_WIDTH) -> str:
    """A single bar scaled against ``maximum``."""
    if maximum <= 0:
        raise ConfigurationError("bar maximum must be positive")
    filled = int(round(width * max(0.0, min(value, maximum)) / maximum))
    return "█" * filled + "·" * (width - filled)


class GroupedBarChart:
    """Grouped horizontal bars (one group per x-axis category).

    >>> chart = GroupedBarChart("Fig 1e", value_format="{:.1f}%")
    >>> chart.add("2 sizes", "g=1 clustered", 2.3)
    >>> chart.add("2 sizes", "g=2 clustered", 1.5)
    >>> print(chart.render())  # doctest: +ELLIPSIS
    Fig 1e
    ...
    """

    def __init__(
        self,
        title: str,
        value_format: str = "{:.1f}",
        maximum: float | None = None,
    ) -> None:
        self.title = title
        self.value_format = value_format
        self.maximum = maximum
        self._groups: dict[str, list[tuple[str, float]]] = {}
        self._group_order: list[str] = []

    def add(self, group: str, series: str, value: float) -> None:
        """Add one bar: ``group`` is the x category, ``series`` the legend."""
        if group not in self._groups:
            self._groups[group] = []
            self._group_order.append(group)
        self._groups[group].append((series, value))

    def render(self) -> str:
        """Render all groups with a shared scale."""
        values = [v for bars in self._groups.values() for _, v in bars]
        if not values:
            return f"{self.title}\n(no data)"
        maximum = self.maximum if self.maximum is not None else max(values)
        maximum = max(maximum, 1e-12)
        label_width = max(
            (len(s) for bars in self._groups.values() for s, _ in bars),
            default=0,
        )
        lines = [self.title]
        for group in self._group_order:
            lines.append(f"  {group}")
            for series, value in self._groups[group]:
                bar = render_bar(value, maximum)
                formatted = self.value_format.format(value)
                lines.append(f"    {series.ljust(label_width)} {bar} {formatted}")
        return "\n".join(lines)
