"""Exception hierarchy for the ``repro`` package.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures without catching unrelated Python errors.
The allocation-related errors mirror the conditions the paper's simulator
logs: an allocation request that cannot be satisfied raises
:class:`DiskFullError`, which the experiment drivers interpret as the end of
an allocation test.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class ConfigurationError(ReproError):
    """A simulation, disk, policy, or workload configuration is invalid."""


class SimulationError(ReproError):
    """The discrete-event engine was used incorrectly."""


class AllocationError(ReproError):
    """Base class for allocation failures."""


class AllocatorStateError(SimulationError):
    """An allocator's internal structures were driven into a bad state.

    Wraps the low-level :class:`SimulationError` raised deep in the free
    structures (``"block N already free"`` and kin) with the policy and
    the allocation operation that triggered it, so a failure surfacing
    from a long fuzz or sweep run is attributable without a debugger.

    Attributes:
        policy: the allocator's ``name``.
        op: the public allocator operation running (``"create"``,
            ``"extend"``, ``"truncate"``, ``"delete"``).
        original: the underlying error.
    """

    def __init__(self, policy: str, op: str, original: SimulationError) -> None:
        self.policy = policy
        self.op = op
        self.original = original
        super().__init__(f"[{policy}/{op}] {original}")


class DiskFullError(AllocationError):
    """An allocation request could not be satisfied.

    The paper: "If an allocation request cannot be satisfied, a disk full
    condition is logged."  Experiment drivers catch this to terminate
    allocation tests and to compute fragmentation at the moment of failure.

    Attributes:
        requested_units: size of the request that failed, in disk units.
        free_units: number of free disk units remaining in the system
            (the external fragmentation numerator).
    """

    def __init__(self, requested_units: int, free_units: int) -> None:
        self.requested_units = requested_units
        self.free_units = free_units
        super().__init__(
            f"allocation of {requested_units} units failed "
            f"with {free_units} units still free"
        )


class ExperimentError(ReproError):
    """One or more sweep points failed inside the experiment runner.

    Raised *after* the whole sweep has been given the chance to complete
    (and successful points cached), carrying every failing point's
    traceback, so a re-run only repeats the diverging configurations.
    """


class FaultError(ReproError):
    """A fault-injection plan or injector was configured incorrectly."""


class DataUnavailableError(ReproError):
    """An I/O request targets data no surviving drive can provide.

    Raised by a disk organization when a request touches a failed drive
    and redundancy cannot mask it: any access on a plain striped array,
    or a second concurrent failure on a mirror / RAID-5 row.  The
    workload driver treats it like a transient operation failure — the
    user process logs it and retries after its think time.
    """


class SweepInterrupted(ReproError):
    """A sweep was interrupted (SIGINT) after partial completion.

    Carries the checkpoint/partial-results location so the CLI can tell
    the user where flushed state lives; maps to exit status 130.

    Attributes:
        partial_dir: where partial results / the checkpoint manifest were
            flushed, or ``None`` when nothing was persisted.
        completed: sweep points that finished before the interrupt.
        total: sweep points submitted.
    """

    def __init__(
        self, partial_dir: "str | None", completed: int, total: int
    ) -> None:
        self.partial_dir = partial_dir
        self.completed = completed
        self.total = total
        where = f" (partial results flushed to {partial_dir})" if partial_dir else ""
        super().__init__(
            f"sweep interrupted after {completed}/{total} points{where}"
        )


class InvariantViolation(ReproError):
    """A runtime invariant check (:mod:`repro.audit`) failed mid-run.

    Raised by the invariant auditor when a swept check finds simulator
    state that contradicts its own bookkeeping — leaked extents, free
    units that no longer sum to capacity, a queue entry that vanished.
    These are *simulator bugs*, not user errors: the exception carries
    enough context to localize the corruption.

    Attributes:
        time_ms: simulated time when the sweep caught the violation.
        subsystem: which bookkeeping domain failed (``"alloc"``,
            ``"fs"``, ``"disk"``, ``"clock"``, ``"rng"``, ``"fault"``).
        check: the registered check name that raised.
        excerpt: a small JSON-safe snapshot of the offending state.
    """

    def __init__(
        self, time_ms: float, subsystem: str, check: str, detail: str,
        excerpt: "dict | None" = None,
    ) -> None:
        self.time_ms = time_ms
        self.subsystem = subsystem
        self.check = check
        self.detail = detail
        self.excerpt = excerpt or {}
        super().__init__(
            f"invariant {subsystem}/{check} violated at t={time_ms:g}ms: {detail}"
        )


class ServiceError(ReproError):
    """The experiment service (:mod:`repro.serve`) failed a request."""


class ServiceOverloaded(ServiceError):
    """Admission control shed a request: the queue budget is exhausted.

    Load shedding is a *success* of the overload design, not a crash:
    the service bounds its queue and tells the client when to come back
    instead of queueing unboundedly.  Maps to HTTP 429 with a
    ``Retry-After`` header.

    Attributes:
        retry_after_s: suggested client backoff, derived from observed
            service times and the current backlog.
        depth: jobs queued or running when the request was shed.
        budget: the configured admission budget.
    """

    def __init__(self, retry_after_s: float, depth: int, budget: int) -> None:
        self.retry_after_s = retry_after_s
        self.depth = depth
        self.budget = budget
        super().__init__(
            f"service overloaded: {depth} jobs against a budget of "
            f"{budget}; retry in {retry_after_s:.0f}s"
        )


class InvalidRequestError(ReproError):
    """A disk or file-system request is malformed (bad offset, size, id)."""


class FileSystemError(ReproError):
    """A file-system operation referenced a missing or deleted file."""
