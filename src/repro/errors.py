"""Exception hierarchy for the ``repro`` package.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures without catching unrelated Python errors.
The allocation-related errors mirror the conditions the paper's simulator
logs: an allocation request that cannot be satisfied raises
:class:`DiskFullError`, which the experiment drivers interpret as the end of
an allocation test.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class ConfigurationError(ReproError):
    """A simulation, disk, policy, or workload configuration is invalid."""


class SimulationError(ReproError):
    """The discrete-event engine was used incorrectly."""


class AllocationError(ReproError):
    """Base class for allocation failures."""


class DiskFullError(AllocationError):
    """An allocation request could not be satisfied.

    The paper: "If an allocation request cannot be satisfied, a disk full
    condition is logged."  Experiment drivers catch this to terminate
    allocation tests and to compute fragmentation at the moment of failure.

    Attributes:
        requested_units: size of the request that failed, in disk units.
        free_units: number of free disk units remaining in the system
            (the external fragmentation numerator).
    """

    def __init__(self, requested_units: int, free_units: int) -> None:
        self.requested_units = requested_units
        self.free_units = free_units
        super().__init__(
            f"allocation of {requested_units} units failed "
            f"with {free_units} units still free"
        )


class ExperimentError(ReproError):
    """One or more sweep points failed inside the experiment runner.

    Raised *after* the whole sweep has been given the chance to complete
    (and successful points cached), carrying every failing point's
    traceback, so a re-run only repeats the diverging configurations.
    """


class InvalidRequestError(ReproError):
    """A disk or file-system request is malformed (bad offset, size, id)."""


class FileSystemError(ReproError):
    """A file-system operation referenced a missing or deleted file."""
