"""JSON wire format for experiment requests.

The service accepts *task specs* — plain JSON dicts naming everything an
:class:`~repro.core.runner.ExperimentTask` needs — and turns them back
into executable tasks.  The codec is deliberately narrower than the
Python API: only the fields a remote client may vary are accepted, every
unknown key is an error (a typo must not silently fall back to a
default and simulate the wrong experiment), and the round trip is
stable: ``spec_to_task(task_to_spec(t))`` rebuilds a task with the same
``cache_key``, which is what makes the ledger's recorded specs a
faithful crash-recovery record.

A spec looks like::

    {
      "kind": "performance",                 # or "allocation"
      "workload": "TS",                      # TS | TP | SC
      "seed": 7,
      "policy": {"name": "fixed", "block_size": "4K"},
      "system": {"scale": 0.02, "organization": "striped"},
      "faults": "fail:drive=0,at=5000",      # optional --inject grammar
      "audit": {"fingerprints": true},       # optional AuditConfig fields
      "kwargs": {"app_cap_ms": 8000.0}       # experiment keyword args
    }
"""

from __future__ import annotations

import dataclasses
import math
from typing import Any

from ..audit.invariants import AuditConfig
from ..core.configs import (
    BuddyPolicy,
    ExperimentConfig,
    ExtentPolicy,
    FfsPolicy,
    FixedPolicy,
    LogStructuredPolicy,
    PolicyConfig,
    RestrictedPolicy,
    SystemConfig,
)
from ..core.runner import ExperimentTask
from ..disk.geometry import WREN_IV
from ..errors import ConfigurationError
from ..fault.plan import ALL_DRIVES, FaultSpec, parse_fault_spec

#: Wire names for the policy configurations a spec may request.
POLICY_CODECS: dict[str, type[PolicyConfig]] = {
    "buddy": BuddyPolicy,
    "restricted": RestrictedPolicy,
    "extent": ExtentPolicy,
    "fixed": FixedPolicy,
    "ffs": FfsPolicy,
    "lfs": LogStructuredPolicy,
}

#: SystemConfig fields a remote client may set.  ``geometry`` is
#: deliberately absent: the wire format pins the paper's Wren IV.
_SYSTEM_FIELDS = (
    "n_disks",
    "stripe_unit",
    "disk_unit",
    "scale",
    "queue_discipline",
    "organization",
)

#: Experiment kwargs a spec may pass (all JSON scalars).  ``audit`` is
#: its own top-level spec field because it builds an AuditConfig.
_KWARG_FIELDS = {
    "performance": (
        "app_cap_ms",
        "seq_cap_ms",
        "warmup_ms",
        "collect_trace",
        "collect_metrics",
    ),
    "allocation": ("fill_fraction", "max_operations"),
}

_AUDIT_FIELDS = tuple(f.name for f in dataclasses.fields(AuditConfig))


def _require_mapping(value: Any, where: str) -> dict:
    if not isinstance(value, dict):
        raise ConfigurationError(f"{where}: expected an object, got {value!r}")
    return value


def _reject_unknown(body: dict, allowed: tuple[str, ...], where: str) -> None:
    unknown = sorted(set(body) - set(allowed))
    if unknown:
        raise ConfigurationError(
            f"{where}: unknown field(s) {', '.join(unknown)}; "
            f"allowed: {', '.join(allowed)}"
        )


def _decode_policy(body: Any) -> PolicyConfig:
    body = dict(_require_mapping(body, "policy"))
    name = body.pop("name", None)
    if name not in POLICY_CODECS:
        raise ConfigurationError(
            f"policy.name: expected one of {', '.join(sorted(POLICY_CODECS))}, "
            f"got {name!r}"
        )
    cls = POLICY_CODECS[name]
    field_names = tuple(f.name for f in dataclasses.fields(cls))
    _reject_unknown(body, field_names, f"policy[{name}]")
    kwargs: dict[str, Any] = {}
    for key, value in body.items():
        # Tuple-typed fields (block size ladders, extent ranges) arrive
        # as JSON arrays.
        kwargs[key] = tuple(value) if isinstance(value, list) else value
    try:
        return cls(**kwargs)
    except TypeError as error:
        raise ConfigurationError(f"policy[{name}]: {error}") from None


def _encode_policy(policy: PolicyConfig) -> dict:
    for name, cls in POLICY_CODECS.items():
        if type(policy) is cls:
            body: dict[str, Any] = {"name": name}
            for f in dataclasses.fields(cls):
                value = getattr(policy, f.name)
                body[f.name] = list(value) if isinstance(value, tuple) else value
            return body
    raise ConfigurationError(
        f"policy {type(policy).__name__} has no wire encoding"
    )


def _decode_system(body: Any) -> SystemConfig:
    body = _require_mapping(body, "system")
    _reject_unknown(body, _SYSTEM_FIELDS, "system")
    return SystemConfig(**body)


def _encode_system(system: SystemConfig) -> dict:
    if system.geometry is not WREN_IV and system.geometry != WREN_IV:
        raise ConfigurationError(
            "system.geometry: custom geometries have no wire encoding"
        )
    return {name: getattr(system, name) for name in _SYSTEM_FIELDS}


def _encode_faults(spec: FaultSpec) -> str:
    """Render a FaultSpec back into the ``--inject`` grammar."""
    if spec.seed_salt or spec.rebuild_rows_per_chunk != 8:
        raise ConfigurationError(
            "faults: seed_salt / rebuild tuning have no wire encoding"
        )
    clauses = []
    # repr() for floats: the grammar re-parses with float(), and %g would
    # truncate past six significant digits.
    for f in spec.failures:
        clause = f"fail:drive={f.drive},at={f.at_ms!r}"
        if f.repair_after_ms is not None:
            clause += f",repair={f.repair_after_ms!r}"
        clauses.append(clause)
    for s in spec.slowdowns:
        clause = f"slow:drive={s.drive},at={s.at_ms!r},factor={s.factor!r}"
        if not math.isinf(s.duration_ms):
            clause += f",for={s.duration_ms!r}"
        clauses.append(clause)
    for t in spec.transients:
        clause = f"transient:rate={t.rate!r}"
        if t.drive != ALL_DRIVES:
            clause += f",drive={t.drive}"
        if t.start_ms:
            clause += f",from={t.start_ms!r}"
        if not math.isinf(t.end_ms):
            clause += f",until={t.end_ms!r}"
        clauses.append(clause)
    return ";".join(clauses)


_SPEC_FIELDS = (
    "kind",
    "workload",
    "seed",
    "policy",
    "system",
    "fill_fraction",
    "faults",
    "audit",
    "kwargs",
)


def spec_to_task(spec: Any) -> ExperimentTask:
    """Build the executable task a JSON spec describes.

    Raises :class:`~repro.errors.ConfigurationError` on any unknown
    field, bad type, or value the underlying configs reject — the
    HTTP layer maps those to 400 responses.
    """
    spec = _require_mapping(spec, "task spec")
    _reject_unknown(spec, _SPEC_FIELDS, "task spec")
    kind = spec.get("kind", "performance")
    if kind not in _KWARG_FIELDS:
        raise ConfigurationError(
            f"kind: expected 'performance' or 'allocation', got {kind!r}"
        )
    workload = spec.get("workload")
    if workload not in ("TS", "TP", "SC"):
        raise ConfigurationError(
            f"workload: expected TS, TP, or SC, got {workload!r}"
        )
    seed = spec.get("seed", 1991)
    if not isinstance(seed, int) or isinstance(seed, bool):
        raise ConfigurationError(f"seed: expected an integer, got {seed!r}")

    policy = _decode_policy(spec.get("policy", {"name": "restricted"}))
    system = _decode_system(spec.get("system", {}))

    faults = None
    if spec.get("faults"):
        if not isinstance(spec["faults"], str):
            raise ConfigurationError(
                f"faults: expected an --inject string, got {spec['faults']!r}"
            )
        faults = parse_fault_spec(spec["faults"])

    config_kwargs: dict[str, Any] = dict(
        policy=policy, workload=workload, system=system, seed=seed, faults=faults
    )
    if "fill_fraction" in spec:
        config_kwargs["fill_fraction"] = spec["fill_fraction"]
    config = ExperimentConfig(**config_kwargs)

    kwargs = dict(_require_mapping(spec.get("kwargs", {}), "kwargs"))
    _reject_unknown(kwargs, _KWARG_FIELDS[kind], "kwargs")
    if "audit" in spec and spec["audit"] is not None:
        audit = _require_mapping(spec["audit"], "audit")
        _reject_unknown(audit, _AUDIT_FIELDS, "audit")
        kwargs["audit"] = AuditConfig(**audit)

    if kind == "performance":
        return ExperimentTask.performance(config, **kwargs)
    return ExperimentTask.allocation(config, **kwargs)


def task_to_spec(task: ExperimentTask) -> dict:
    """The JSON spec describing ``task`` (inverse of :func:`spec_to_task`).

    The round trip preserves the task's ``cache_key``; tasks using
    features outside the wire format (custom geometries, fault seed
    salts) raise :class:`~repro.errors.ConfigurationError`.
    """
    config = task.config
    spec: dict[str, Any] = {
        "kind": task.kind,
        "workload": config.workload,
        "seed": config.seed,
        "policy": _encode_policy(config.policy),
        "system": _encode_system(config.system),
    }
    if config.fill_fraction != 0.91:
        spec["fill_fraction"] = config.fill_fraction
    if config.faults is not None:
        spec["faults"] = _encode_faults(config.faults)
    kwargs = dict(task.kwargs)
    audit = kwargs.pop("audit", None)
    if audit is not None:
        spec["audit"] = {
            f.name: getattr(audit, f.name)
            for f in dataclasses.fields(AuditConfig)
        }
    if kwargs:
        spec["kwargs"] = kwargs
    return spec
