"""The resilient experiment service (``repro serve``).

A long-running daemon that accepts experiment and sweep requests over
HTTP/JSON and executes them on the same supervised worker machinery
local sweeps use.  The package splits cleanly:

* :mod:`~repro.serve.codec` — the JSON wire format for task specs
  (strict validation; the round trip preserves cache keys).
* :mod:`~repro.serve.ledger` — the durable accept/done journal that
  makes a SIGKILL'd daemon recoverable.
* :mod:`~repro.serve.service` — admission control, single-flight dedup,
  the engine thread, telemetry fan-out.
* :mod:`~repro.serve.http` — the stdlib ``http.server`` front door
  (submission, status, SSE streaming, chaos drills).
"""

from .codec import spec_to_task, task_to_spec
from .http import ServeDaemon, make_daemon
from .ledger import LedgerEntry, RunLedger
from .service import (
    ExperimentService,
    Job,
    ServiceStats,
    execute_spec,
    result_digest,
    result_summary,
)

__all__ = [
    "ExperimentService",
    "Job",
    "LedgerEntry",
    "RunLedger",
    "ServeDaemon",
    "ServiceStats",
    "execute_spec",
    "make_daemon",
    "result_digest",
    "result_summary",
    "spec_to_task",
    "task_to_spec",
]
