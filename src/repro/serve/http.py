"""HTTP/JSON front door for the experiment service.

A deliberately thin shell over
:class:`~repro.serve.service.ExperimentService` built on the standard
library's ``http.server`` (one thread per connection via
``ThreadingHTTPServer`` — the service core is already thread-safe, and
the expensive work happens in worker *processes*, so threads only ever
block on I/O).  Routes:

=======  ==============================  =======================================
Method   Path                            Meaning
=======  ==============================  =======================================
GET      ``/healthz``                    liveness + uptime
GET      ``/v1/stats``                   admission / dedup / supervision counters
POST     ``/v1/experiments``             submit one spec; optional bounded wait
POST     ``/v1/sweeps``                  submit many specs in one request
GET      ``/v1/jobs/<key>``              job status (+ result summary when done)
GET      ``/v1/jobs/<key>/events``       SSE stream of progress frames
POST     ``/v1/chaos/kill-worker``       fault drill (only with ``--chaos``)
=======  ==============================  =======================================

Error mapping is uniform: malformed specs → 400 with the validator's
message, admission shed → **429 with a Retry-After header**, unknown
job/route → 404, chaos endpoints without the flag → 403.  Every response
body is JSON.

The SSE stream follows the ``text/event-stream`` contract: ``event:``/
``data:`` blocks, comment keep-alives while idle, and the connection
closes after the terminal ``done`` event.  A subscriber that stops
reading simply loses progress frames (the service's bounded per-client
queues drop, never block) and is torn down on the first failed write.
"""

from __future__ import annotations

import json
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any
from urllib.parse import urlparse

from ..errors import ConfigurationError, ReproError, ServiceOverloaded
from .service import ExperimentService

#: Largest request body accepted (a sweep of thousands of specs fits).
_MAX_BODY_BYTES = 8 << 20

#: Idle seconds between SSE keep-alive comments.
_SSE_KEEPALIVE_S = 10.0


class ServeDaemon(ThreadingHTTPServer):
    """The service's HTTP server: one handler thread per connection."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(
        self,
        address: tuple[str, int],
        service: ExperimentService,
        chaos: bool = False,
        quiet: bool = True,
    ) -> None:
        super().__init__(address, ServeHandler)
        self.service = service
        self.chaos = chaos
        self.quiet = quiet


class _Reply(Exception):
    """Internal control flow: a fully-formed response to send."""

    def __init__(
        self, status: int, body: dict, headers: dict[str, str] | None = None
    ) -> None:
        self.status = status
        self.body = body
        self.headers = headers or {}


class ServeHandler(BaseHTTPRequestHandler):
    protocol_version = "HTTP/1.1"
    server: ServeDaemon  # narrowed from BaseServer

    # -- plumbing ------------------------------------------------------------

    @property
    def service(self) -> ExperimentService:
        return self.server.service

    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        if not self.server.quiet:
            super().log_message(format, *args)

    def _send_json(
        self, status: int, body: dict, headers: dict[str, str] | None = None
    ) -> None:
        payload = json.dumps(body).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(payload)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(payload)

    def _read_body(self) -> dict:
        length = int(self.headers.get("Content-Length", 0) or 0)
        if length <= 0:
            raise _Reply(400, {"error": "a JSON request body is required"})
        if length > _MAX_BODY_BYTES:
            raise _Reply(413, {"error": f"request body over {_MAX_BODY_BYTES} bytes"})
        blob = self.rfile.read(length)
        try:
            body = json.loads(blob)
        except ValueError as error:
            raise _Reply(400, {"error": f"request body is not JSON: {error}"})
        if not isinstance(body, dict):
            raise _Reply(400, {"error": "request body must be a JSON object"})
        return body

    def _dispatch(self, method: str) -> None:
        path = urlparse(self.path).path.rstrip("/")
        try:
            self._route(method, path)
        except _Reply as reply:
            self._send_json(reply.status, reply.body, reply.headers)
        except ServiceOverloaded as error:
            self._send_json(
                429,
                {
                    "error": str(error),
                    "retry_after_s": error.retry_after_s,
                    "depth": error.depth,
                    "budget": error.budget,
                },
                {"Retry-After": str(max(1, round(error.retry_after_s)))},
            )
        except ConfigurationError as error:
            self._send_json(400, {"error": str(error)})
        except (BrokenPipeError, ConnectionResetError):
            self.close_connection = True
        except ReproError as error:
            self._send_json(400, {"error": str(error)})

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        self._dispatch("GET")

    def do_POST(self) -> None:  # noqa: N802 - http.server API
        self._dispatch("POST")

    # -- routing -------------------------------------------------------------

    def _route(self, method: str, path: str) -> None:
        if method == "GET" and path == "/healthz":
            self._send_json(200, {"ok": True, **self.service.stats_view()})
        elif method == "GET" and path == "/v1/stats":
            self._send_json(200, self.service.stats_view())
        elif method == "POST" and path == "/v1/experiments":
            self._submit_one()
        elif method == "POST" and path == "/v1/sweeps":
            self._submit_sweep()
        elif method == "GET" and path.startswith("/v1/jobs/"):
            rest = path[len("/v1/jobs/"):]
            if rest.endswith("/events"):
                self._stream_events(rest[: -len("/events")])
            else:
                self._job_status(rest)
        elif method == "POST" and path == "/v1/chaos/kill-worker":
            self._chaos_kill_worker()
        else:
            self._send_json(404, {"error": f"no route: {method} {path}"})

    # -- submission ----------------------------------------------------------

    def _submit_one(self) -> None:
        body = self._read_body()
        spec = body.get("spec")
        if spec is None:
            raise _Reply(400, {"error": "body must carry a 'spec' object"})
        priority = body.get("priority", "normal")
        wait_s = body.get("wait_s")
        if wait_s is not None and not isinstance(wait_s, (int, float)):
            raise _Reply(400, {"error": f"wait_s: expected a number, got {wait_s!r}"})
        job, how = self.service.submit(spec, priority=priority)
        if wait_s:
            self.service.wait(job, timeout_s=min(float(wait_s), 600.0))
        view = self.service.job_view(job)
        view["submitted"] = how
        status = 200 if job.finished else 202
        self._send_json(status, view)

    def _submit_sweep(self) -> None:
        body = self._read_body()
        specs = body.get("specs")
        if not isinstance(specs, list) or not specs:
            raise _Reply(400, {"error": "body must carry a non-empty 'specs' array"})
        priority = body.get("priority", "normal")
        items: list[dict] = []
        accepted = shed = invalid = 0
        for spec in specs:
            try:
                job, how = self.service.submit(spec, priority=priority)
            except ServiceOverloaded as error:
                shed += 1
                items.append(
                    {
                        "submitted": "shed",
                        "error": str(error),
                        "retry_after_s": error.retry_after_s,
                    }
                )
            except ReproError as error:
                invalid += 1
                items.append({"submitted": "invalid", "error": str(error)})
            else:
                accepted += 1
                items.append({"submitted": how, "job": job.key, "status": job.state})
        summary = {
            "jobs": items,
            "accepted": accepted,
            "shed": shed,
            "invalid": invalid,
        }
        if accepted == 0 and shed > 0:
            # The whole sweep bounced off admission control: make the
            # overload unmissable and machine-honored.
            retry = max(
                item.get("retry_after_s", 1.0)
                for item in items
                if item["submitted"] == "shed"
            )
            self._send_json(
                429, summary, {"Retry-After": str(max(1, round(retry)))}
            )
        else:
            self._send_json(200, summary)

    # -- status + streaming --------------------------------------------------

    def _job_status(self, key: str) -> None:
        job = self.service.job(key)
        if job is None:
            raise _Reply(404, {"error": f"no such job: {key}"})
        self._send_json(200, self.service.job_view(job))

    def _stream_events(self, key: str) -> None:
        import queue as queue_mod

        job = self.service.job(key)
        if job is None:
            raise _Reply(404, {"error": f"no such job: {key}"})
        events = self.service.subscribe(job)
        self.send_response(200)
        self.send_header("Content-Type", "text/event-stream")
        self.send_header("Cache-Control", "no-cache")
        self.send_header("Connection", "close")
        self.end_headers()
        self.close_connection = True
        try:
            while True:
                try:
                    event = events.get(timeout=_SSE_KEEPALIVE_S)
                except queue_mod.Empty:
                    if job.finished:
                        # Terminal event already drained (or raced past a
                        # full queue): close with a final snapshot.
                        self._sse_write("done", self.service.job_view(job))
                        return
                    self._sse_comment()
                    continue
                self._sse_write(event["event"], event["data"])
                if event["event"] == "done":
                    return
        except (BrokenPipeError, ConnectionResetError, OSError):
            return  # client went away; the bounded queue is discarded
        finally:
            self.service.unsubscribe(job, events)

    def _sse_write(self, name: str, data: dict) -> None:
        blob = f"event: {name}\ndata: {json.dumps(data)}\n\n"
        self.wfile.write(blob.encode())
        self.wfile.flush()

    def _sse_comment(self) -> None:
        self.wfile.write(b": keep-alive\n\n")
        self.wfile.flush()

    # -- chaos ---------------------------------------------------------------

    def _chaos_kill_worker(self) -> None:
        if not self.server.chaos:
            raise _Reply(
                403, {"error": "chaos endpoints require --chaos at startup"}
            )
        self.service.request_worker_kill()
        self._send_json(200, {"requested": True})


def make_daemon(
    service: ExperimentService,
    host: str = "127.0.0.1",
    port: int = 0,
    chaos: bool = False,
    quiet: bool = True,
) -> ServeDaemon:
    """Bind the HTTP front door (``port=0`` picks a free port)."""
    return ServeDaemon((host, port), service, chaos=chaos, quiet=quiet)
