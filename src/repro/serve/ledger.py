"""Durable run ledger: the service's crash-recovery record.

The ledger generalizes :class:`~repro.core.checkpoint.SweepCheckpoint`
from "one sweep, one manifest" to "a long-running service, an unbounded
request stream".  It is an append-only JSONL file in the service's state
directory:

* ``{"op": "accept", "key": K, "spec": {...}, "priority": P}`` — a
  request passed admission.  Written (and fsynced) *before* the job is
  queued, so a daemon killed at any later instant knows the job existed.
* ``{"op": "done", "key": K, "status": "ok"}`` — the result is safely in
  the result store.  ``status: "error"`` records a *deterministic* task
  failure (the simulation raises identically every time), so a restart
  reports it instead of re-running it forever.

Recovery is a replay: accepted keys without a ``done`` record are the
in-flight jobs a crash orphaned; their specs rebuild the exact tasks
(the codec round-trip preserves cache keys) and the simulation's
determinism makes the re-run bit-identical.  A crash mid-append leaves a
torn final line; :meth:`RunLedger.open` truncates the file back to the
last complete record — losing at most the one record whose write was in
flight, never corrupting the prefix.

On every open the replayed state is compacted into a fresh ledger
(atomic rename): completed work collapses to ``done`` stubs so the file
stays proportional to history the service still needs, not to lifetime
request count.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from ..errors import ServiceError

LEDGER_FORMAT = 1


@dataclass
class LedgerEntry:
    """Replayed state of one accepted key."""

    key: str
    spec: dict
    priority: int = 1
    done: bool = False
    error: str | None = None
    extra: dict = field(default_factory=dict)


class RunLedger:
    """Append-only, fsynced accept/done journal with torn-tail recovery."""

    def __init__(self, directory: str | Path) -> None:
        self.directory = Path(directory)
        self.path = self.directory / "ledger.jsonl"
        self._handle = None
        self.recovered_bytes = 0  # torn bytes dropped by the last open

    # -- lifecycle -----------------------------------------------------------

    def open(self) -> dict[str, LedgerEntry]:
        """Replay the journal, repair any torn tail, compact, reopen.

        Returns the replayed entries by key (insertion = acceptance
        order, which preserves FIFO fairness across a restart).
        """
        self.directory.mkdir(parents=True, exist_ok=True)
        entries = self._replay()
        self._compact(entries)
        self._handle = open(self.path, "a", encoding="utf-8")
        return entries

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    # -- appends -------------------------------------------------------------

    def accept(
        self, key: str, spec: dict, priority: int = 1, **extra: Any
    ) -> None:
        """Record an admitted request (durable before it may execute)."""
        record = {"op": "accept", "key": key, "spec": spec, "priority": priority}
        record.update(extra)
        self._append(record)

    def done(self, key: str, error: str | None = None) -> None:
        """Record a completed (or deterministically failed) request."""
        record: dict[str, Any] = {
            "op": "done",
            "key": key,
            "status": "error" if error is not None else "ok",
        }
        if error is not None:
            record["error"] = error
        self._append(record)

    def _append(self, record: dict) -> None:
        if self._handle is None:
            raise ServiceError("ledger is not open")
        self._handle.write(json.dumps(record, sort_keys=True) + "\n")
        self._handle.flush()
        os.fsync(self._handle.fileno())

    # -- replay / repair -----------------------------------------------------

    def _replay(self) -> dict[str, LedgerEntry]:
        entries: dict[str, LedgerEntry] = {}
        try:
            blob = self.path.read_bytes()
        except OSError:
            return entries
        good_end = 0
        for raw_line in blob.splitlines(keepends=True):
            if not raw_line.endswith(b"\n"):
                break  # torn tail: the append was cut mid-record
            try:
                record = json.loads(raw_line)
            except ValueError:
                break  # garbage line: everything after it is suspect
            if not isinstance(record, dict):
                break
            self._apply(record, entries)
            good_end += len(raw_line)
        self.recovered_bytes = len(blob) - good_end
        return entries

    @staticmethod
    def _apply(record: dict, entries: dict[str, LedgerEntry]) -> None:
        op = record.get("op")
        key = record.get("key")
        if not isinstance(key, str):
            return
        if op == "accept":
            spec = record.get("spec")
            if not isinstance(spec, dict):
                return
            extra = {
                k: v
                for k, v in record.items()
                if k not in ("op", "key", "spec", "priority")
            }
            entries[key] = LedgerEntry(
                key=key,
                spec=spec,
                priority=int(record.get("priority", 1)),
                extra=extra,
            )
        elif op == "done" and key in entries:
            entries[key].done = True
            if record.get("status") == "error":
                entries[key].error = str(record.get("error", "unknown error"))

    def _compact(self, entries: dict[str, LedgerEntry]) -> None:
        """Rewrite the journal from replayed state (atomic + fsynced)."""
        temp = self.path.with_name(f"{self.path.name}.{os.getpid()}.tmp")
        with open(temp, "w", encoding="utf-8") as handle:
            for entry in entries.values():
                record: dict[str, Any] = {
                    "op": "accept",
                    "key": entry.key,
                    "spec": entry.spec,
                    "priority": entry.priority,
                }
                record.update(entry.extra)
                handle.write(json.dumps(record, sort_keys=True) + "\n")
                if entry.done:
                    done: dict[str, Any] = {
                        "op": "done",
                        "key": entry.key,
                        "status": "error" if entry.error is not None else "ok",
                    }
                    if entry.error is not None:
                        done["error"] = entry.error
                    handle.write(json.dumps(done, sort_keys=True) + "\n")
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(temp, self.path)
