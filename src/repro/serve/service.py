"""The experiment service: admission, single-flight dedup, recovery.

:class:`ExperimentService` is the transport-independent heart of
``repro serve`` — the HTTP front door (:mod:`repro.serve.http`) is a
thin shell over it, and tests drive it directly.  One service owns:

* an **admission queue**: a bounded priority heap.  A request beyond
  the ``max_queue`` budget is *shed* with a computed retry hint
  (:class:`~repro.errors.ServiceOverloaded` → HTTP 429 + Retry-After)
  instead of queueing unboundedly; heavy traffic degrades into bounded
  waiting plus honest rejections, never into an OOM-killed daemon.
* **single-flight dedup** keyed on the task's sha256 ``cache_key``: any
  number of identical concurrent requests collapse onto one
  :class:`Job`, cost one simulation, and all observe its result through
  the shared :class:`~repro.core.runner.ResultCache`.
* the **worker fabric**: a :class:`~repro.core.pool.WorkerCrew` +
  :class:`~repro.core.pool.TaskScheduler` driven by a dedicated engine
  thread — the same supervision machinery local sweeps use (wall-clock
  timeouts, crash replacement, deterministic backoff retries), fed
  incrementally from the network queue.
* a **durable ledger** (:mod:`repro.serve.ledger`): every admitted
  request is journaled before it may run, every completion after its
  result is stored.  A SIGKILL'd daemon restarted on the same state
  directory re-admits exactly the orphaned jobs and — because the
  simulation derives everything from ``(config, seed)`` — finishes them
  bit-identically.
* **telemetry fan-out**: progress frames streamed by workers are routed
  to per-job subscriber queues (the SSE endpoint's feed).  Slow
  subscribers lose frames, never stall the engine; disconnected ones
  are pruned.
"""

from __future__ import annotations

import heapq
import itertools
import queue
import threading
import time
import traceback
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable

from ..core.pool import PoolStats, TaskScheduler, WorkerCrew
from ..core.runner import ResultCache, _canonical
from ..errors import ServiceError, ServiceOverloaded
from .codec import spec_to_task, task_to_spec
from .ledger import RunLedger

#: Job lifecycle states.
QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"

#: Wire priorities (lower runs first).
PRIORITIES = {"high": 0, "normal": 1, "low": 2}

#: Fallback per-job service-time guess (seconds) before any completions.
_DEFAULT_SERVICE_S = 5.0

#: Dropped frames counter key pushed to subscribers is intentionally
#: absent: a slow client simply sees gaps — frames are progress hints,
#: not data.
_SUBSCRIBER_QUEUE_FRAMES = 256


def execute_spec(spec: dict) -> tuple[str, Any, float]:
    """Run one task spec to completion; never raise.

    The service's worker protocol distinguishes ``"task-error"`` (the
    experiment itself raised — deterministic, so it is journaled as a
    permanent failure and never retried) from the scheduler-synthesized
    ``"error"`` (worker crash / timeout with retries exhausted — an
    *environmental* failure, left un-journaled so a restart re-runs it).
    """
    start = time.perf_counter()
    try:
        result = spec_to_task(spec).execute()
        return ("ok", result, time.perf_counter() - start)
    except Exception:  # noqa: BLE001 - structured failure channel
        return ("task-error", traceback.format_exc(), time.perf_counter() - start)


@dataclass
class Job:
    """One admitted unit of work (shared by all identical requests)."""

    key: str
    spec: dict
    priority: int = 1
    state: str = QUEUED
    error: str | None = None
    submitted_s: float = field(default_factory=time.monotonic)
    started_s: float | None = None
    finished_s: float | None = None
    elapsed_s: float = 0.0
    recovered: bool = False
    done_event: threading.Event = field(default_factory=threading.Event)
    subscribers: list[queue.Queue] = field(default_factory=list)

    @property
    def finished(self) -> bool:
        return self.state in (DONE, FAILED)


@dataclass
class ServiceStats:
    """Request-path counters (`/v1/stats`)."""

    accepted: int = 0
    deduped: int = 0
    cache_hits: int = 0
    shed: int = 0
    executed: int = 0
    failed: int = 0
    recovered: int = 0
    frames_routed: int = 0
    frames_dropped: int = 0

    def snapshot(self) -> dict:
        return {
            "accepted": self.accepted,
            "deduped": self.deduped,
            "cache_hits": self.cache_hits,
            "shed": self.shed,
            "executed": self.executed,
            "failed": self.failed,
            "recovered": self.recovered,
            "frames_routed": self.frames_routed,
            "frames_dropped": self.frames_dropped,
        }


def result_digest(result: Any) -> str:
    """Canonical sha256 of a result — the wire's bit-identity witness.

    Uses the runner's canonical JSON projection (stable across
    processes, platforms, and restarts), so two services computing the
    same point can be compared without shipping the pickles.
    """
    import hashlib
    import json

    rendered = json.dumps(
        _canonical(result), sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(rendered.encode()).hexdigest()


def result_summary(result: Any) -> dict:
    """JSON-safe headline view of an experiment result."""
    summary: dict[str, Any] = {
        "type": type(result).__name__,
        "result_digest": result_digest(result),
    }
    application = getattr(result, "application", None)
    if application is not None:
        summary["application_percent"] = application.percent
        summary["sequential_percent"] = result.sequential.percent
    fragmentation = getattr(result, "fragmentation", None)
    if fragmentation is not None:
        summary["internal_fragmentation_percent"] = fragmentation.internal_percent
        summary["external_fragmentation_percent"] = fragmentation.external_percent
        summary["operations"] = result.operations
    fingerprints = getattr(result, "fingerprints", None)
    if fingerprints:
        summary["fingerprints"] = [
            {"index": f.index, "time_ms": f.time_ms, "digest": f.digest}
            for f in fingerprints
        ]
    return summary


class ExperimentService:
    """Admission control + single-flight + durable execution.

    Args:
        state_dir: the service's durable root: ``ledger.jsonl`` plus a
            ``results/`` cache live here.  Restarting on the same
            directory recovers orphaned work.
        workers: worker process count for the crew.
        max_queue: admission budget — jobs queued or running before
            requests shed.  Deduped attachments to an existing job never
            count against it.
        timeout_s / retries / backoff_base_s / jitter_seed: the crew and
            scheduler supervision knobs (identical semantics to
            :class:`~repro.core.pool.SupervisedPool`).
        work_fn: picklable ``spec -> (status, payload, elapsed)``
            override for tests; defaults to :func:`execute_spec`.
    """

    def __init__(
        self,
        state_dir: str | Path,
        workers: int = 2,
        max_queue: int = 32,
        timeout_s: float | None = None,
        retries: int = 1,
        backoff_base_s: float = 0.5,
        jitter_seed: int = 0,
        work_fn: Callable[[dict], tuple[str, Any, float]] | None = None,
    ) -> None:
        if workers < 1:
            raise ServiceError(f"need at least one worker: {workers}")
        if max_queue < 1:
            raise ServiceError(f"admission budget must be >= 1: {max_queue}")
        self.state_dir = Path(state_dir)
        self.workers = workers
        self.max_queue = max_queue
        self.timeout_s = timeout_s
        self.retries = retries
        self.backoff_base_s = backoff_base_s
        self.jitter_seed = jitter_seed
        self.work_fn = work_fn or execute_spec
        self.cache = ResultCache(self.state_dir / "results")
        self.ledger = RunLedger(self.state_dir)
        self.stats = ServiceStats()
        self.pool_stats = PoolStats()
        self._lock = threading.Lock()
        self._jobs: dict[str, Job] = {}
        self._heap: list[tuple[int, int, str]] = []
        self._seq = itertools.count()
        self._dispatch_seq = itertools.count()
        self._dispatched: dict[int, str] = {}
        self._service_times: list[float] = []
        self._kill_requests = 0
        self._stop = threading.Event()
        self._engine: threading.Thread | None = None
        self.started_at: float | None = None

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> None:
        """Open the ledger, re-admit orphaned work, start the engine."""
        if self._engine is not None:
            raise ServiceError("service already started")
        entries = self.ledger.open()
        with self._lock:
            for entry in entries.values():
                if entry.done:
                    if entry.error is not None:
                        # A deterministic failure stays failed across
                        # restarts — re-running it would fail identically.
                        job = Job(
                            key=entry.key,
                            spec=entry.spec,
                            priority=entry.priority,
                            state=FAILED,
                            error=entry.error,
                        )
                        job.done_event.set()
                        self._jobs[entry.key] = job
                    continue
                job = Job(
                    key=entry.key,
                    spec=entry.spec,
                    priority=entry.priority,
                    recovered=True,
                )
                self._jobs[entry.key] = job
                heapq.heappush(
                    self._heap, (job.priority, next(self._seq), job.key)
                )
                self.stats.recovered += 1
        self.started_at = time.monotonic()
        self._engine = threading.Thread(
            target=self._engine_loop, name="repro-serve-engine", daemon=True
        )
        self._engine.start()

    def stop(self, timeout_s: float = 10.0) -> None:
        """Stop the engine and reap every worker.

        In-flight jobs stay journaled as accepted-but-not-done; the next
        :meth:`start` on the same state directory re-admits them — stop
        is deliberately indistinguishable from a crash as far as the
        recovery guarantees go.
        """
        self._stop.set()
        engine = self._engine
        if engine is not None:
            engine.join(timeout=timeout_s)
            self._engine = None
            if engine.is_alive():
                # The engine is wedged past the grace period: leave the
                # ledger open rather than race its appends; the daemon
                # is exiting anyway and the journal is fsynced per write.
                return
        self.ledger.close()

    # -- request path --------------------------------------------------------

    def submit(self, spec: Any, priority: str | int = "normal") -> tuple[Job, str]:
        """Admit one task spec; returns ``(job, how)``.

        ``how`` is ``"done"`` (served from the result cache),
        ``"deduped"`` (attached to an identical in-flight job), or
        ``"queued"`` (admitted and journaled).

        Raises:
            ConfigurationError: the spec is malformed (→ HTTP 400).
            ServiceOverloaded: admission budget exhausted (→ HTTP 429).
        """
        if isinstance(priority, str):
            if priority not in PRIORITIES:
                raise ServiceError(
                    f"priority: expected one of {', '.join(PRIORITIES)}, "
                    f"got {priority!r}"
                )
            priority = PRIORITIES[priority]
        # Validate + canonicalize the spec outside the lock: rebuilding
        # the task computes the cache key and rejects malformed specs.
        task = spec_to_task(spec)
        key = task.cache_key
        spec = task_to_spec(task)
        with self._lock:
            job = self._jobs.get(key)
            if job is not None and not job.finished:
                self.stats.deduped += 1
                return job, "deduped"
            cached = self.cache.load(key)
            if cached is not None:
                self.stats.cache_hits += 1
                job = Job(key=key, spec=spec, state=DONE)
                job.elapsed_s = 0.0
                job.done_event.set()
                self._jobs[key] = job
                return job, "done"
            if job is not None and job.state == FAILED:
                # A journaled deterministic failure: serve the verdict,
                # do not re-run what fails identically every time.
                self.stats.deduped += 1
                return job, "deduped"
            depth = self._depth_locked()
            if depth >= self.max_queue:
                self.stats.shed += 1
                raise ServiceOverloaded(
                    self._retry_after_locked(depth), depth, self.max_queue
                )
            self.stats.accepted += 1
            job = Job(key=key, spec=spec, priority=priority)
            self.ledger.accept(key, spec, priority=priority)
            self._jobs[key] = job
            heapq.heappush(self._heap, (priority, next(self._seq), key))
            return job, "queued"

    def job(self, key: str) -> Job | None:
        """The job for ``key`` — registry first, then the result cache.

        A restarted daemon has no registry entry for work completed in a
        previous life; the cache *is* the durable record, so a hit there
        synthesizes a done job view.
        """
        with self._lock:
            job = self._jobs.get(key)
            if job is not None:
                return job
        if self.cache.load(key) is not None:
            job = Job(key=key, spec={}, state=DONE)
            job.done_event.set()
            with self._lock:
                return self._jobs.setdefault(key, job)
        return None

    def job_view(self, job: Job) -> dict:
        """JSON-safe status document for one job."""
        view: dict[str, Any] = {
            "job": job.key,
            "status": job.state,
            "priority": job.priority,
            "recovered": job.recovered,
        }
        if job.error is not None:
            view["error"] = job.error
        if job.state == DONE:
            result = self.cache.load(job.key)
            if result is not None:
                view["summary"] = result_summary(result)
            view["elapsed_s"] = job.elapsed_s
        return view

    def wait(self, job: Job, timeout_s: float | None = None) -> bool:
        """Block until ``job`` finishes; True when it did."""
        return job.done_event.wait(timeout_s)

    def result(self, key: str) -> Any | None:
        """The stored result for a finished job, if any."""
        return self.cache.load(key)

    # -- telemetry fan-out ---------------------------------------------------

    def subscribe(self, job: Job) -> queue.Queue:
        """A queue of telemetry events for one job (SSE feed).

        Events are dicts: ``{"event": "progress", "data": frame}`` then a
        final ``{"event": "done", "data": view}``.  The queue is bounded;
        a subscriber that cannot keep up loses *progress* frames (never
        the final event, which is delivered via :meth:`unsubscribe`-safe
        best effort plus the job's done flag).
        """
        q: queue.Queue = queue.Queue(maxsize=_SUBSCRIBER_QUEUE_FRAMES)
        with self._lock:
            if job.finished:
                q.put({"event": "done", "data": self.job_view(job)})
            else:
                job.subscribers.append(q)
        return q

    def unsubscribe(self, job: Job, q: queue.Queue) -> None:
        with self._lock:
            if q in job.subscribers:
                job.subscribers.remove(q)

    def _publish(self, job: Job, event: dict, critical: bool) -> None:
        for q in list(job.subscribers):
            try:
                q.put_nowait(event)
                self.stats.frames_routed += 1
            except queue.Full:
                if critical:
                    # Make room: drop the oldest progress frame so the
                    # terminal event always lands.
                    try:
                        q.get_nowait()
                        q.put_nowait(event)
                    except (queue.Empty, queue.Full):
                        pass
                self.stats.frames_dropped += 1

    # -- admission internals -------------------------------------------------

    def _depth_locked(self) -> int:
        return sum(
            1 for job in self._jobs.values() if not job.finished
        )

    def _retry_after_locked(self, depth: int) -> float:
        if self._service_times:
            window = self._service_times[-32:]
            avg = sum(window) / len(window)
        else:
            avg = _DEFAULT_SERVICE_S
        estimate = avg * (depth - self.max_queue + 1 + depth) / (2 * self.workers)
        return min(120.0, max(1.0, estimate))

    # -- chaos hooks ---------------------------------------------------------

    def request_worker_kill(self) -> None:
        """Ask the engine to SIGKILL one busy worker (fault drill).

        The kill happens on the engine thread (the crew is not
        thread-safe) and is observed as an ordinary crash: replacement
        worker, scheduler retry policy, journaled recovery — the whole
        real path.
        """
        with self._lock:
            self._kill_requests += 1

    # -- engine --------------------------------------------------------------

    def _engine_loop(self) -> None:
        crew = WorkerCrew(
            self.work_fn,
            timeout_s=self.timeout_s,
            telemetry=self._on_frame,
            stats=self.pool_stats,
        )
        scheduler = TaskScheduler(
            crew,
            retries=self.retries,
            backoff_base_s=self.backoff_base_s,
            jitter_seed=self.jitter_seed,
        )
        try:
            crew.ensure_workers(self.workers)
            while not self._stop.is_set():
                self._feed(scheduler)
                self._drill(crew)
                for index, _payload, outcome in scheduler.step(0.05):
                    self._complete(index, outcome)
        finally:
            crew.shutdown()

    def _feed(self, scheduler: TaskScheduler) -> None:
        """Move admitted jobs into the scheduler, at most ``workers`` deep.

        Keeping the scheduler shallow is what makes priorities real: the
        heap reorders everything not yet handed to a worker.
        """
        with self._lock:
            while self._heap and scheduler.outstanding < self.workers:
                _, _, key = heapq.heappop(self._heap)
                job = self._jobs.get(key)
                if job is None or job.state != QUEUED:
                    continue
                job.state = RUNNING
                job.started_s = time.monotonic()
                index = next(self._dispatch_seq)
                self._dispatched[index] = key
                scheduler.add(index, job.spec)

    def _drill(self, crew: WorkerCrew) -> None:
        with self._lock:
            kills, self._kill_requests = self._kill_requests, 0
        for _ in range(kills):
            crew.kill_one()

    def _on_frame(self, index: int, frame: dict) -> None:
        with self._lock:
            key = self._dispatched.get(index)
            job = self._jobs.get(key) if key is not None else None
            if job is None:
                return
            self._publish(job, {"event": "progress", "data": frame}, critical=False)

    def _complete(self, index: int, outcome: tuple[str, Any, float]) -> None:
        status, payload, elapsed = outcome
        if status == "ok":
            # Store *before* journaling completion: a crash between the
            # two re-runs the job (idempotent), the reverse order could
            # journal a completion whose result was lost.
            key_for_store = None
            with self._lock:
                key_for_store = self._dispatched.get(index)
            if key_for_store is not None:
                self.cache.store(key_for_store, payload)
        with self._lock:
            key = self._dispatched.pop(index, None)
            job = self._jobs.get(key) if key is not None else None
            if job is None:
                return
            job.finished_s = time.monotonic()
            job.elapsed_s = elapsed
            if status == "ok":
                job.state = DONE
                self.stats.executed += 1
                self._service_times.append(
                    job.finished_s - (job.started_s or job.finished_s)
                )
                del self._service_times[:-128]
                self.ledger.done(key)
            elif status == "task-error":
                job.state = FAILED
                job.error = payload
                self.stats.failed += 1
                # Deterministic: journal it so a restart reports instead
                # of re-running a config that fails identically.
                self.ledger.done(key, error=payload)
            else:
                job.state = FAILED
                job.error = payload
                self.stats.failed += 1
                # Environmental (crash/timeout, retries exhausted): NOT
                # journaled as done — a restart re-admits and re-runs it.
            self._publish(job, {"event": "done", "data": self.job_view(job)}, True)
            job.subscribers.clear()
            job.done_event.set()

    # -- reporting -----------------------------------------------------------

    def stats_view(self) -> dict:
        with self._lock:
            depth = self._depth_locked()
            states: dict[str, int] = {}
            for job in self._jobs.values():
                states[job.state] = states.get(job.state, 0) + 1
        view = self.stats.snapshot()
        view.update(
            {
                "depth": depth,
                "budget": self.max_queue,
                "workers": self.workers,
                "jobs": states,
                "uptime_s": (
                    time.monotonic() - self.started_at
                    if self.started_at is not None
                    else 0.0
                ),
                "supervision": {
                    "crashes": self.pool_stats.crashes,
                    "timeouts": self.pool_stats.timeouts,
                    "retries": self.pool_stats.retries,
                    "workers_replaced": self.pool_stats.workers_replaced,
                },
                "cache": {
                    "hits": self.cache.hits,
                    "misses": self.cache.misses,
                    "evictions": self.cache.evictions,
                },
            }
        )
        return view
